//! The budgeted tuning loop: virtual clock + batched evaluation engine.
//!
//! The tuner evaluates configurations through an [`EvalBackend`], charging
//! every measurement (and the initial search space construction) to a
//! *virtual clock*. This reproduces the setup of Figures 6 and 7: a fixed
//! time budget is shared between search space construction and kernel
//! evaluations, so a slow construction method eats into the time available
//! for actual tuning.
//!
//! Strategies submit whole batches of proposals ([`TuningContext::
//! evaluate_batch`]). The engine runs each batch in three phases:
//!
//! 1. **Resolve** (serial): classify each slot as a cache hit, an
//!    out-of-space rejection, the first occurrence of a distinct uncached
//!    configuration, or an in-batch duplicate of one.
//! 2. **Fan-out** (parallel): measure the distinct uncached configurations
//!    on scoped worker threads via the backend, inserting results into the
//!    sharded eval cache as they land; results are joined in chunk order.
//! 3. **Merge** (serial, proposal order): charge the virtual clock slot by
//!    slot exactly as the old one-at-a-time path did — full measurement
//!    cost for fresh measurements, [`CACHE_HIT_COST_MS`] for hits and
//!    in-batch duplicates, nothing for rejections — so a batched run is
//!    cost-trajectory-identical to a serial run regardless of thread count.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

use at_searchspace::{ConfigId, SearchSpace};

use crate::eval::{
    EvalBackend, EvalMetrics, EvalOptions, EvalOutcome, Measurement, ModelBackend, ShardedEvalCache,
};
use crate::kernel::PerformanceModel;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Id of the configuration in the search space.
    pub config_index: ConfigId,
    /// Simulated kernel runtime in milliseconds.
    pub runtime_ms: f64,
    /// Virtual time (milliseconds since tuning start, including construction)
    /// at which the measurement finished.
    pub finished_at_ms: f64,
}

/// The result of one tuning run.
#[derive(Debug, Clone, Default)]
pub struct TuningRun {
    /// Name of the strategy that produced the run.
    pub strategy: String,
    /// All evaluations in execution order (cache hits are not repeated).
    pub evaluations: Vec<Evaluation>,
    /// Virtual time charged to search space construction (milliseconds).
    pub construction_ms: f64,
    /// Total virtual time consumed (milliseconds).
    pub total_ms: f64,
    /// The time budget (milliseconds).
    pub budget_ms: f64,
    /// What the evaluation pipeline did: batch sizes, cache hit/dedup
    /// ratios, rejected proposals, fan-out utilization.
    pub metrics: EvalMetrics,
}

impl TuningRun {
    /// The best (lowest) runtime seen so far at each evaluation, as
    /// `(virtual time ms, best runtime ms)` pairs — the data behind the
    /// best-configuration-over-time curves of Figures 6 and 7.
    pub fn best_over_time(&self) -> Vec<(f64, f64)> {
        let mut best = f64::INFINITY;
        let mut out = Vec::with_capacity(self.evaluations.len());
        for e in &self.evaluations {
            if e.runtime_ms < best {
                best = e.runtime_ms;
            }
            out.push((e.finished_at_ms, best));
        }
        out
    }

    /// The best runtime found, if any configuration was evaluated.
    pub fn best_runtime_ms(&self) -> Option<f64> {
        self.best_evaluation().map(|e| e.runtime_ms)
    }

    /// The best evaluation (lowest runtime; first reached on ties).
    pub fn best_evaluation(&self) -> Option<&Evaluation> {
        self.evaluations.iter().min_by(|a, b| {
            a.runtime_ms
                .partial_cmp(&b.runtime_ms)
                .expect("no NaN runtimes")
        })
    }

    /// The best runtime found no later than `time_ms` on the virtual clock.
    pub fn best_at(&self, time_ms: f64) -> Option<f64> {
        self.evaluations
            .iter()
            .filter(|e| e.finished_at_ms <= time_ms)
            .map(|e| e.runtime_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN runtimes"))
    }

    /// Number of distinct configurations evaluated.
    pub fn num_evaluations(&self) -> usize {
        self.evaluations.len()
    }
}

/// Simulated framework overhead of serving a cached measurement, in
/// milliseconds. Kernel Tuner's strategy loop has a comparable per-iteration
/// cost; charging it keeps the virtual clock advancing even when a strategy
/// only revisits configurations it has already measured.
pub const CACHE_HIT_COST_MS: f64 = 0.5;

/// How a batch slot resolves before the fan-out: the serial phase-1
/// classification that phase 3 replays in proposal order.
enum Slot {
    /// Served by the eval cache (a previous batch measured it).
    Hit(Measurement),
    /// The id names no configuration of the space.
    Reject,
    /// First occurrence of a distinct uncached configuration; the payload
    /// indexes into the fan-out's `unique` list.
    Unique(usize),
    /// In-batch duplicate of `unique[payload]`.
    Dup(usize),
}

/// The mutable state a strategy drives: batched evaluation, caching,
/// budget and RNG.
pub struct TuningContext<'a> {
    space: &'a SearchSpace,
    backend: &'a dyn EvalBackend,
    threads: usize,
    rng: ChaCha8Rng,
    cache: ShardedEvalCache,
    clock_ms: f64,
    budget_ms: f64,
    evaluations: Vec<Evaluation>,
    metrics: EvalMetrics,
}

impl<'a> TuningContext<'a> {
    /// Create a context. `construction` is charged to the clock up front.
    pub fn new(
        space: &'a SearchSpace,
        backend: &'a dyn EvalBackend,
        budget: Duration,
        construction: Duration,
        seed: u64,
        options: EvalOptions,
    ) -> Self {
        let threads = options.threads.max(1);
        TuningContext {
            space,
            backend,
            threads,
            rng: ChaCha8Rng::seed_from_u64(seed),
            cache: ShardedEvalCache::new(),
            clock_ms: construction.as_secs_f64() * 1000.0,
            budget_ms: budget.as_secs_f64() * 1000.0,
            evaluations: Vec::new(),
            metrics: EvalMetrics {
                threads,
                ..EvalMetrics::default()
            },
        }
    }

    /// The search space being tuned. The returned reference lives for the
    /// whole tuning run (`'a`), not just this borrow of the context, so
    /// strategies can hold arena slices across `rng()`/`evaluate_batch()`
    /// calls.
    pub fn space(&self) -> &'a SearchSpace {
        self.space
    }

    /// The random number generator (seeded per run).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Remaining budget in milliseconds (zero when exhausted).
    pub fn remaining_ms(&self) -> f64 {
        (self.budget_ms - self.clock_ms).max(0.0)
    }

    /// True when no further evaluations are possible: either the budget is
    /// spent, or every configuration of the space has already been measured
    /// (strategies must terminate once the space is fully explored, since
    /// cache hits do not advance the virtual clock).
    pub fn exhausted(&self) -> bool {
        self.clock_ms >= self.budget_ms || self.evaluations.len() >= self.space.len()
    }

    /// Evaluate a batch of proposed configurations.
    ///
    /// Returns one [`EvalOutcome`] per proposal, in proposal order. The
    /// distinct uncached configurations in the batch are measured in
    /// parallel (up to the configured fan-out width), but all budget
    /// accounting happens serially in proposal order, so the run is
    /// identical for any thread count. Once an outcome in the batch is
    /// [`EvalOutcome::OutOfBudget`], every later slot is too — strategies
    /// should stop proposing (see [`crate::eval::out_of_budget`]).
    ///
    /// Cache hits and in-batch duplicates are served like Kernel Tuner's
    /// `cache` feature: the stored runtime comes back bitwise-identical and
    /// only [`CACHE_HIT_COST_MS`] of framework overhead is charged.
    /// Proposals whose id names no configuration of the space come back
    /// [`EvalOutcome::Rejected`] — nothing is charged, and the rejection is
    /// counted in the run's [`EvalMetrics`].
    pub fn evaluate_batch(&mut self, ids: &[ConfigId]) -> Vec<EvalOutcome> {
        self.metrics.batches += 1;
        self.metrics.proposed += ids.len() as u64;
        self.metrics.largest_batch = self.metrics.largest_batch.max(ids.len());

        // Phase 1 — resolve: classify every slot, collecting the distinct
        // uncached configurations that need fresh measurements.
        let resolve_span = at_obs::span("resolve", "tune").arg("proposed", ids.len() as u64);
        let mut slots: Vec<Slot> = Vec::with_capacity(ids.len());
        let mut unique: Vec<ConfigId> = Vec::new();
        let mut first_seen: FxHashMap<ConfigId, usize> = FxHashMap::default();
        for &id in ids {
            let slot = if let Some(m) = self.cache.get(id) {
                Slot::Hit(m)
            } else if let Some(&u) = first_seen.get(&id) {
                Slot::Dup(u)
            } else if self.space.view(id).is_none() {
                Slot::Reject
            } else {
                let u = unique.len();
                unique.push(id);
                first_seen.insert(id, u);
                Slot::Unique(u)
            };
            slots.push(slot);
        }

        drop(resolve_span.arg("unique", unique.len() as u64));

        // Phase 2 — fan-out: measure the distinct misses in parallel.
        let fanout_span = at_obs::span("fanout", "tune").arg("unique", unique.len() as u64);
        let measured = self.measure_unique(&unique);
        drop(fanout_span);

        // Phase 3 — merge: replay the slots in proposal order against the
        // virtual clock. `committed[u]` tracks whether unique configuration
        // `u` fit the budget, so in-batch duplicates behave exactly like
        // cache hits of a measurement that really happened.
        let merge_span = at_obs::span("merge", "tune");
        let mut committed = vec![false; unique.len()];
        let mut outcomes = Vec::with_capacity(ids.len());
        for (slot, &id) in slots.iter().zip(ids) {
            if self.exhausted() {
                self.metrics.out_of_budget += 1;
                outcomes.push(EvalOutcome::OutOfBudget);
                continue;
            }
            let outcome = match *slot {
                Slot::Hit(m) => {
                    self.charge_hit();
                    self.metrics.cache_hits += 1;
                    EvalOutcome::Cached(m.runtime_ms)
                }
                Slot::Reject => {
                    self.metrics.rejected += 1;
                    EvalOutcome::Rejected
                }
                Slot::Unique(u) => match measured[u] {
                    Some(m) if self.clock_ms + m.cost_ms <= self.budget_ms => {
                        self.clock_ms += m.cost_ms;
                        self.evaluations.push(Evaluation {
                            config_index: id,
                            runtime_ms: m.runtime_ms,
                            finished_at_ms: self.clock_ms,
                        });
                        committed[u] = true;
                        self.metrics.measured += 1;
                        EvalOutcome::Measured(m.runtime_ms)
                    }
                    Some(_) => {
                        // The measurement would not finish within the budget.
                        self.clock_ms = self.budget_ms;
                        self.metrics.out_of_budget += 1;
                        EvalOutcome::OutOfBudget
                    }
                    // The backend refused an id the space resolved — treat
                    // it like an out-of-space proposal.
                    None => {
                        self.metrics.rejected += 1;
                        EvalOutcome::Rejected
                    }
                },
                Slot::Dup(u) => {
                    if committed[u] {
                        self.charge_hit();
                        self.metrics.deduped += 1;
                        EvalOutcome::Cached(
                            measured[u].expect("committed implies measured").runtime_ms,
                        )
                    } else {
                        // The first occurrence overflowed the budget, so the
                        // clock is already pinned at the budget.
                        self.metrics.out_of_budget += 1;
                        EvalOutcome::OutOfBudget
                    }
                }
            };
            outcomes.push(outcome);
        }
        drop(merge_span.arg("outcomes", outcomes.len() as u64));
        outcomes
    }

    /// Evaluate a single configuration (a batch of 1).
    pub fn evaluate_one(&mut self, id: ConfigId) -> EvalOutcome {
        self.evaluate_batch(std::slice::from_ref(&id))[0]
    }

    fn charge_hit(&mut self) {
        self.clock_ms = (self.clock_ms + CACHE_HIT_COST_MS).min(self.budget_ms);
    }

    /// Measure the distinct uncached configurations of a batch, fanning out
    /// over scoped worker threads when more than one thread is configured.
    /// Results come back in input order regardless of scheduling; each
    /// worker also publishes its measurements to the sharded cache.
    fn measure_unique(&mut self, unique: &[ConfigId]) -> Vec<Option<Measurement>> {
        let workers = self.threads.min(unique.len());
        let space = self.space;
        let backend = self.backend;
        let cache = &self.cache;
        let measure_chunk = |chunk: &[ConfigId]| {
            let results = backend.evaluate_batch(space, chunk);
            debug_assert_eq!(results.len(), chunk.len());
            for (&id, m) in chunk.iter().zip(&results) {
                if let Some(m) = *m {
                    cache.insert(id, m);
                }
            }
            results
        };
        if workers <= 1 {
            let _span = at_obs::span("eval-worker", "tune")
                .arg("worker", 0)
                .arg("configs", unique.len() as u64);
            return measure_chunk(unique);
        }
        self.metrics.fanout_batches += 1;
        self.metrics.fanout_thread_slots += workers as u64;
        let chunk_len = unique.len().div_ceil(workers);
        std::thread::scope(|s| {
            let mc = &measure_chunk;
            let handles: Vec<_> = unique
                .chunks(chunk_len)
                .enumerate()
                .map(|(worker, chunk)| {
                    s.spawn(move || {
                        let _span = at_obs::span("eval-worker", "tune")
                            .arg("worker", worker as u64)
                            .arg("configs", chunk.len() as u64);
                        mc(chunk)
                    })
                })
                .collect();
            let mut out = Vec::with_capacity(unique.len());
            for h in handles {
                out.extend(h.join().expect("eval worker panicked"));
            }
            out
        })
    }

    /// Finish the run and produce the result record.
    pub fn finish(self, strategy: &str, construction: Duration) -> TuningRun {
        TuningRun {
            strategy: strategy.to_string(),
            evaluations: self.evaluations,
            construction_ms: construction.as_secs_f64() * 1000.0,
            total_ms: self.clock_ms,
            budget_ms: self.budget_ms,
            metrics: self.metrics,
        }
    }
}

/// An optimization strategy that explores the search space under a budget.
pub trait Strategy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Run the strategy until the context's budget is exhausted.
    fn run(&self, ctx: &mut TuningContext<'_>);
}

/// Tune `space` with `strategy` under a virtual-time `budget`, charging
/// `construction` (the measured search space construction time) up front.
/// Evaluates through the in-process performance model, serially — see
/// [`tune_with_options`] for parallel fan-out and [`tune_with_backend`]
/// for custom backends.
pub fn tune(
    space: &SearchSpace,
    model: &dyn PerformanceModel,
    strategy: &dyn Strategy,
    budget: Duration,
    construction: Duration,
    seed: u64,
) -> TuningRun {
    tune_with_options(
        space,
        model,
        strategy,
        budget,
        construction,
        seed,
        EvalOptions::default(),
    )
}

/// [`tune`], with explicit evaluation options (fan-out width). The run is
/// identical for any thread count; only wall-clock time differs.
#[allow(clippy::too_many_arguments)]
pub fn tune_with_options(
    space: &SearchSpace,
    model: &dyn PerformanceModel,
    strategy: &dyn Strategy,
    budget: Duration,
    construction: Duration,
    seed: u64,
    options: EvalOptions,
) -> TuningRun {
    let backend = ModelBackend::new(model);
    tune_with_backend(
        space,
        &backend,
        strategy,
        budget,
        construction,
        seed,
        options,
    )
}

/// Tune against an arbitrary [`EvalBackend`] — the entry point a
/// measure-on-real-hardware backend plugs into.
#[allow(clippy::too_many_arguments)]
pub fn tune_with_backend(
    space: &SearchSpace,
    backend: &dyn EvalBackend,
    strategy: &dyn Strategy,
    budget: Duration,
    construction: Duration,
    seed: u64,
    options: EvalOptions,
) -> TuningRun {
    let mut ctx = TuningContext::new(space, backend, budget, construction, seed, options);
    if !space.is_empty() {
        strategy.run(&mut ctx);
    }
    ctx.finish(strategy.name(), construction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::strategies::RandomSampling;
    use at_searchspace::prelude::*;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn budget_is_respected() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            42,
        );
        assert!(run.total_ms <= run.budget_ms + 1e-9);
        assert!(run.num_evaluations() > 0);
        assert!(run
            .evaluations
            .iter()
            .all(|e| e.finished_at_ms <= run.budget_ms));
    }

    #[test]
    fn construction_time_reduces_evaluations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let budget = Duration::from_millis(3000);
        let fast = tune(&s, &k, &RandomSampling, budget, Duration::ZERO, 42);
        let slow = tune(
            &s,
            &k,
            &RandomSampling,
            budget,
            Duration::from_millis(2500),
            42,
        );
        assert!(slow.num_evaluations() < fast.num_evaluations());
        assert_eq!(slow.construction_ms, 2500.0);
    }

    #[test]
    fn best_over_time_is_monotonically_nonincreasing() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(5000),
            Duration::ZERO,
            7,
        );
        let curve = run.best_over_time();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(run.best_runtime_ms(), Some(curve.last().unwrap().1));
    }

    #[test]
    fn best_at_timestamp() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(5000),
            Duration::ZERO,
            7,
        );
        assert!(run.best_at(0.0).is_none());
        let end_best = run.best_at(run.budget_ms).unwrap();
        assert_eq!(Some(end_best), run.best_runtime_ms());
    }

    #[test]
    fn construction_longer_than_budget_means_no_evaluations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(1000),
            Duration::from_millis(2000),
            1,
        );
        assert_eq!(run.num_evaluations(), 0);
        assert!(run.best_runtime_ms().is_none());
    }

    #[test]
    fn strategies_terminate_once_the_space_is_fully_explored() {
        // A huge budget on a small space must not loop forever: once every
        // configuration is measured, the context reports exhaustion.
        let s = space();
        let k = SyntheticKernel::for_space(&s, 2);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_secs(1_000_000),
            Duration::ZERO,
            3,
        );
        assert_eq!(run.num_evaluations(), s.len());
    }

    #[test]
    fn same_seed_same_run() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 5);
        let a = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            9,
        );
        let b = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            9,
        );
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn batch_with_duplicates_measures_once_and_serves_the_rest() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let backend = ModelBackend::new(&k);
        let mut ctx = TuningContext::new(
            &s,
            &backend,
            Duration::from_secs(60),
            Duration::ZERO,
            0,
            EvalOptions::default(),
        );
        let a = ConfigId::from_index(0);
        let b = ConfigId::from_index(1);
        let out = ctx.evaluate_batch(&[a, a, b]);
        let ra = out[0].runtime().unwrap();
        assert!(matches!(out[0], EvalOutcome::Measured(_)));
        // The duplicate is bitwise-identical and only charged the hit cost.
        assert_eq!(out[1], EvalOutcome::Cached(ra));
        assert!(matches!(out[2], EvalOutcome::Measured(_)));
        let run = ctx.finish("test", Duration::ZERO);
        assert_eq!(run.num_evaluations(), 2);
        assert_eq!(run.metrics.measured, 2);
        assert_eq!(run.metrics.deduped, 1);
        let cfg_a = s.view(a).unwrap().to_vec();
        let cfg_b = s.view(b).unwrap().to_vec();
        let expected =
            k.measurement_cost_ms(&cfg_a) + CACHE_HIT_COST_MS + k.measurement_cost_ms(&cfg_b);
        assert_eq!(run.total_ms, expected);
    }

    #[test]
    fn cache_hit_returns_identical_runtime_and_charges_only_overhead() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let backend = ModelBackend::new(&k);
        let mut ctx = TuningContext::new(
            &s,
            &backend,
            Duration::from_secs(60),
            Duration::ZERO,
            0,
            EvalOptions::default(),
        );
        let a = ConfigId::from_index(5);
        let first = ctx.evaluate_one(a);
        let clock_after_first = ctx.clock_ms;
        let second = ctx.evaluate_one(a);
        assert_eq!(second, EvalOutcome::Cached(first.runtime().unwrap()));
        assert_eq!(ctx.clock_ms, clock_after_first + CACHE_HIT_COST_MS);
        let run = ctx.finish("test", Duration::ZERO);
        assert_eq!(run.num_evaluations(), 1);
        assert_eq!(run.metrics.cache_hits, 1);
    }

    #[test]
    fn out_of_space_proposals_are_rejected_and_counted() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let backend = ModelBackend::new(&k);
        let mut ctx = TuningContext::new(
            &s,
            &backend,
            Duration::from_secs(60),
            Duration::ZERO,
            0,
            EvalOptions::default(),
        );
        let bogus = ConfigId::from_index(s.len());
        let good = ConfigId::from_index(0);
        let out = ctx.evaluate_batch(&[bogus, good]);
        assert_eq!(out[0], EvalOutcome::Rejected);
        assert!(matches!(out[1], EvalOutcome::Measured(_)));
        // A rejection charges nothing.
        let cfg = s.view(good).unwrap().to_vec();
        assert_eq!(ctx.clock_ms, k.measurement_cost_ms(&cfg));
        let run = ctx.finish("test", Duration::ZERO);
        assert_eq!(run.metrics.rejected, 1);
    }

    #[test]
    fn threads_do_not_change_the_run() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 5);
        let budget = Duration::from_millis(4000);
        let serial = tune_with_options(
            &s,
            &k,
            &RandomSampling,
            budget,
            Duration::ZERO,
            11,
            EvalOptions::with_threads(1),
        );
        let parallel = tune_with_options(
            &s,
            &k,
            &RandomSampling,
            budget,
            Duration::ZERO,
            11,
            EvalOptions::with_threads(8),
        );
        assert_eq!(serial.evaluations, parallel.evaluations);
        assert_eq!(serial.total_ms, parallel.total_ms);
        // Everything except the fan-out bookkeeping matches too.
        assert_eq!(serial.metrics.measured, parallel.metrics.measured);
        assert_eq!(serial.metrics.cache_hits, parallel.metrics.cache_hits);
        assert_eq!(serial.metrics.deduped, parallel.metrics.deduped);
        assert_eq!(serial.metrics.rejected, parallel.metrics.rejected);
    }

    #[test]
    fn budget_overflow_mid_batch_pins_the_clock() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let backend = ModelBackend::new(&k);
        // Budget fits exactly one measurement of ~58+ ms, not two.
        let mut ctx = TuningContext::new(
            &s,
            &backend,
            Duration::from_millis(100),
            Duration::ZERO,
            0,
            EvalOptions::default(),
        );
        let ids: Vec<ConfigId> = (0..4).map(ConfigId::from_index).collect();
        let out = ctx.evaluate_batch(&ids);
        assert!(matches!(out[0], EvalOutcome::Measured(_)));
        assert!(out[1..].iter().all(|o| o.is_out_of_budget()));
        let run = ctx.finish("test", Duration::ZERO);
        assert_eq!(run.total_ms, run.budget_ms);
        assert_eq!(run.num_evaluations(), 1);
        assert_eq!(run.metrics.out_of_budget, 3);
    }
}
