//! The budgeted tuning loop and its virtual clock.
//!
//! The tuner evaluates configurations through a [`PerformanceModel`],
//! charging every measurement (and the initial search space construction) to
//! a *virtual clock*. This reproduces the setup of Figures 6 and 7: a fixed
//! time budget is shared between search space construction and kernel
//! evaluations, so a slow construction method eats into the time available
//! for actual tuning.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rustc_hash::FxHashMap;

use at_csp::Value;
use at_searchspace::{ConfigId, SearchSpace};

use crate::kernel::PerformanceModel;

/// One evaluated configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Id of the configuration in the search space.
    pub config_index: ConfigId,
    /// Simulated kernel runtime in milliseconds.
    pub runtime_ms: f64,
    /// Virtual time (milliseconds since tuning start, including construction)
    /// at which the measurement finished.
    pub finished_at_ms: f64,
}

/// The result of one tuning run.
#[derive(Debug, Clone, Default)]
pub struct TuningRun {
    /// Name of the strategy that produced the run.
    pub strategy: String,
    /// All evaluations in execution order (cache hits are not repeated).
    pub evaluations: Vec<Evaluation>,
    /// Virtual time charged to search space construction (milliseconds).
    pub construction_ms: f64,
    /// Total virtual time consumed (milliseconds).
    pub total_ms: f64,
    /// The time budget (milliseconds).
    pub budget_ms: f64,
}

impl TuningRun {
    /// The best (lowest) runtime seen so far at each evaluation, as
    /// `(virtual time ms, best runtime ms)` pairs — the data behind the
    /// best-configuration-over-time curves of Figures 6 and 7.
    pub fn best_over_time(&self) -> Vec<(f64, f64)> {
        let mut best = f64::INFINITY;
        let mut out = Vec::with_capacity(self.evaluations.len());
        for e in &self.evaluations {
            if e.runtime_ms < best {
                best = e.runtime_ms;
            }
            out.push((e.finished_at_ms, best));
        }
        out
    }

    /// The best runtime found, if any configuration was evaluated.
    pub fn best_runtime_ms(&self) -> Option<f64> {
        self.evaluations
            .iter()
            .map(|e| e.runtime_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN runtimes"))
    }

    /// The best runtime found no later than `time_ms` on the virtual clock.
    pub fn best_at(&self, time_ms: f64) -> Option<f64> {
        self.evaluations
            .iter()
            .filter(|e| e.finished_at_ms <= time_ms)
            .map(|e| e.runtime_ms)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN runtimes"))
    }

    /// Number of distinct configurations evaluated.
    pub fn num_evaluations(&self) -> usize {
        self.evaluations.len()
    }
}

/// Simulated framework overhead of serving a cached measurement, in
/// milliseconds. Kernel Tuner's strategy loop has a comparable per-iteration
/// cost; charging it keeps the virtual clock advancing even when a strategy
/// only revisits configurations it has already measured.
pub const CACHE_HIT_COST_MS: f64 = 0.5;

/// The mutable state a strategy drives: evaluation, caching, budget and RNG.
pub struct TuningContext<'a> {
    space: &'a SearchSpace,
    model: &'a dyn PerformanceModel,
    rng: ChaCha8Rng,
    cache: FxHashMap<ConfigId, f64>,
    clock_ms: f64,
    budget_ms: f64,
    evaluations: Vec<Evaluation>,
    /// Reusable decode buffer so evaluations do not allocate per call.
    scratch: Vec<Value>,
}

impl<'a> TuningContext<'a> {
    /// Create a context. `construction` is charged to the clock up front.
    pub fn new(
        space: &'a SearchSpace,
        model: &'a dyn PerformanceModel,
        budget: Duration,
        construction: Duration,
        seed: u64,
    ) -> Self {
        TuningContext {
            space,
            model,
            rng: ChaCha8Rng::seed_from_u64(seed),
            cache: FxHashMap::default(),
            clock_ms: construction.as_secs_f64() * 1000.0,
            budget_ms: budget.as_secs_f64() * 1000.0,
            evaluations: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The search space being tuned. The returned reference lives for the
    /// whole tuning run (`'a`), not just this borrow of the context, so
    /// strategies can hold arena slices across `rng()`/`evaluate()` calls.
    pub fn space(&self) -> &'a SearchSpace {
        self.space
    }

    /// The random number generator (seeded per run).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.rng
    }

    /// Remaining budget in milliseconds (zero when exhausted).
    pub fn remaining_ms(&self) -> f64 {
        (self.budget_ms - self.clock_ms).max(0.0)
    }

    /// True when no further evaluations are possible: either the budget is
    /// spent, or every configuration of the space has already been measured
    /// (strategies must terminate once the space is fully explored, since
    /// cache hits do not advance the virtual clock).
    pub fn exhausted(&self) -> bool {
        self.clock_ms >= self.budget_ms || self.cache.len() >= self.space.len()
    }

    /// Evaluate the configuration with the given id.
    ///
    /// Returns `None` when the budget is exhausted (strategies should stop).
    /// Previously evaluated configurations are served from the cache, like
    /// Kernel Tuner's `cache` feature; a cache hit still charges
    /// [`CACHE_HIT_COST_MS`] of framework overhead to the clock so that a
    /// strategy revisiting cached configurations cannot spin forever on a
    /// large budget. Cache hits never decode the configuration; misses
    /// decode into a reused buffer.
    pub fn evaluate(&mut self, id: ConfigId) -> Option<f64> {
        if self.exhausted() {
            return None;
        }
        if let Some(&cached) = self.cache.get(&id) {
            self.clock_ms = (self.clock_ms + CACHE_HIT_COST_MS).min(self.budget_ms);
            return Some(cached);
        }
        // Copy the `&'a SearchSpace` out so the view does not borrow `self`.
        let space = self.space;
        let view = space.view(id)?;
        let mut config = std::mem::take(&mut self.scratch);
        view.decode_into(&mut config);
        let cost = self.model.measurement_cost_ms(&config);
        if self.clock_ms + cost > self.budget_ms {
            // The measurement would not finish within the budget.
            self.scratch = config;
            self.clock_ms = self.budget_ms;
            return None;
        }
        let runtime = self.model.runtime_ms(&config);
        self.scratch = config;
        self.clock_ms += cost;
        self.cache.insert(id, runtime);
        self.evaluations.push(Evaluation {
            config_index: id,
            runtime_ms: runtime,
            finished_at_ms: self.clock_ms,
        });
        Some(runtime)
    }

    /// Finish the run and produce the result record.
    pub fn finish(self, strategy: &str, construction: Duration) -> TuningRun {
        TuningRun {
            strategy: strategy.to_string(),
            evaluations: self.evaluations,
            construction_ms: construction.as_secs_f64() * 1000.0,
            total_ms: self.clock_ms,
            budget_ms: self.budget_ms,
        }
    }
}

/// An optimization strategy that explores the search space under a budget.
pub trait Strategy {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Run the strategy until the context's budget is exhausted.
    fn run(&self, ctx: &mut TuningContext<'_>);
}

/// Tune `space` with `strategy` under a virtual-time `budget`, charging
/// `construction` (the measured search space construction time) up front.
pub fn tune(
    space: &SearchSpace,
    model: &dyn PerformanceModel,
    strategy: &dyn Strategy,
    budget: Duration,
    construction: Duration,
    seed: u64,
) -> TuningRun {
    let mut ctx = TuningContext::new(space, model, budget, construction, seed);
    if !space.is_empty() {
        strategy.run(&mut ctx);
    }
    ctx.finish(strategy.name(), construction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::strategies::RandomSampling;
    use at_searchspace::prelude::*;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn budget_is_respected() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            42,
        );
        assert!(run.total_ms <= run.budget_ms + 1e-9);
        assert!(run.num_evaluations() > 0);
        assert!(run
            .evaluations
            .iter()
            .all(|e| e.finished_at_ms <= run.budget_ms));
    }

    #[test]
    fn construction_time_reduces_evaluations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let budget = Duration::from_millis(3000);
        let fast = tune(&s, &k, &RandomSampling, budget, Duration::ZERO, 42);
        let slow = tune(
            &s,
            &k,
            &RandomSampling,
            budget,
            Duration::from_millis(2500),
            42,
        );
        assert!(slow.num_evaluations() < fast.num_evaluations());
        assert_eq!(slow.construction_ms, 2500.0);
    }

    #[test]
    fn best_over_time_is_monotonically_nonincreasing() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(5000),
            Duration::ZERO,
            7,
        );
        let curve = run.best_over_time();
        assert!(!curve.is_empty());
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(run.best_runtime_ms(), Some(curve.last().unwrap().1));
    }

    #[test]
    fn best_at_timestamp() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(5000),
            Duration::ZERO,
            7,
        );
        assert!(run.best_at(0.0).is_none());
        let end_best = run.best_at(run.budget_ms).unwrap();
        assert_eq!(Some(end_best), run.best_runtime_ms());
    }

    #[test]
    fn construction_longer_than_budget_means_no_evaluations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(1000),
            Duration::from_millis(2000),
            1,
        );
        assert_eq!(run.num_evaluations(), 0);
        assert!(run.best_runtime_ms().is_none());
    }

    #[test]
    fn strategies_terminate_once_the_space_is_fully_explored() {
        // A huge budget on a small space must not loop forever: once every
        // configuration is cached, the context reports exhaustion.
        let s = space();
        let k = SyntheticKernel::for_space(&s, 2);
        let run = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_secs(1_000_000),
            Duration::ZERO,
            3,
        );
        assert_eq!(run.num_evaluations(), s.len());
    }

    #[test]
    fn same_seed_same_run() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 5);
        let a = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            9,
        );
        let b = tune(
            &s,
            &k,
            &RandomSampling,
            Duration::from_millis(2000),
            Duration::ZERO,
            9,
        );
        assert_eq!(a.evaluations, b.evaluations);
    }
}
