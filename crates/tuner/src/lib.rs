//! # at-tuner — a minimal auto-tuner over resolved search spaces
//!
//! This crate provides what the paper's Section 5.4 experiment needs from
//! Kernel Tuner: a budgeted tuning loop over a fully resolved
//! [`at_searchspace::SearchSpace`], driven by optimization strategies
//! (random sampling, a genetic algorithm, hill climbing, simulated
//! annealing, differential evolution, particle swarm optimization and
//! iterated local search) and a *simulated* kernel performance model
//! evaluated on a virtual clock. Construction time is charged against the
//! same budget, so the effect of slow search-space construction on tuning
//! outcomes (Figures 6 and 7) can be reproduced without GPU hardware.
//!
//! Evaluation is batch-first: strategies submit whole generations, swarms
//! or neighbor rings through [`TuningContext::evaluate_batch`], and the
//! engine dedups, serves a sharded eval cache, fans the distinct misses out
//! over scoped threads ([`EvalOptions::threads`]) against an
//! [`EvalBackend`], and merges results deterministically — the run is
//! identical for any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod kernel;
pub mod strategies;
pub mod tuning;

pub use eval::{
    out_of_budget, EvalBackend, EvalMetrics, EvalOptions, EvalOutcome, Measurement, ModelBackend,
    ShardedEvalCache,
};
pub use kernel::{PerformanceModel, SyntheticKernel};
pub use strategies::{
    all_strategy_names, strategy_by_name, DifferentialEvolution, GeneticAlgorithm, HillClimbing,
    IteratedLocalSearch, ParticleSwarm, RandomSampling, SimulatedAnnealing,
};
pub use tuning::{
    tune, tune_with_backend, tune_with_options, Evaluation, Strategy, TuningContext, TuningRun,
    CACHE_HIT_COST_MS,
};
