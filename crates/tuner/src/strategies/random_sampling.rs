//! Uniform random sampling without replacement.

use rand::seq::SliceRandom;

use at_searchspace::ConfigId;

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// Chunk size for submitting the shuffled order to the evaluation engine.
/// Batches keep the fan-out busy; the shuffled order itself is unaffected.
const BATCH: usize = 64;

/// Evaluate configurations in a uniformly random order until the budget runs
/// out. Used in the paper's end-to-end experiment (Section 5.4) to avoid
/// biasing the construction-method comparison towards a particular optimizer.
/// The shuffled order is submitted in fixed-size batches, so the evaluation
/// sequence is identical to one-at-a-time submission.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSampling;

impl Strategy for RandomSampling {
    fn name(&self) -> &'static str {
        "random-sampling"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let mut order: Vec<ConfigId> = ctx.space().ids().collect();
        order.shuffle(ctx.rng());
        for batch in order.chunks(BATCH) {
            if out_of_budget(&ctx.evaluate_batch(batch)) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn evaluates_distinct_configurations() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 5))
            .with_param(TunableParameter::pow2("y", 5));
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 0);
        let run = tune(
            &space,
            &model,
            &RandomSampling,
            Duration::from_secs(600),
            Duration::ZERO,
            3,
        );
        // budget is large enough to visit everything exactly once
        assert_eq!(run.num_evaluations(), space.len());
        let mut seen: Vec<ConfigId> = run.evaluations.iter().map(|e| e.config_index).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), space.len());
        // a full sweep never proposes a duplicate
        assert_eq!(run.metrics.cache_hits, 0);
        assert_eq!(run.metrics.deduped, 0);
    }
}
