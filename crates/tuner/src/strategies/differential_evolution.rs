//! Differential evolution adapted to discrete, constrained spaces.
//!
//! Individuals live in the per-parameter *value index* space. The classic
//! DE/rand/1/bin mutation `a + F * (b - c)` is computed on index vectors,
//! rounded, clamped to each parameter's index range and then snapped to a
//! valid configuration: if the mutant is not in the resolved search space the
//! nearest valid configuration (normalized index distance) among a bounded
//! candidate sample is used. This mirrors how Kernel Tuner adapts continuous
//! strategies to constrained discrete spaces via the `SearchSpace`.

use rand::Rng;

use at_csp::Value;

use crate::tuning::{Strategy, TuningContext};

/// DE/rand/1/bin over configuration value indices.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEvolution {
    /// Population size.
    pub population_size: usize,
    /// Differential weight `F`.
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_rate: f64,
    /// How many random valid configurations to consider when snapping an
    /// invalid mutant back into the space.
    pub snap_candidates: usize,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population_size: 20,
            differential_weight: 0.7,
            crossover_rate: 0.8,
            snap_candidates: 64,
        }
    }
}

impl DifferentialEvolution {
    /// Snap an index vector to a valid configuration index: exact hit if the
    /// corresponding configuration exists, otherwise the nearest of a random
    /// sample of valid configurations.
    fn snap(&self, ctx: &mut TuningContext<'_>, target: &[f64]) -> usize {
        let space = ctx.space();
        let exact: Vec<Value> = target
            .iter()
            .enumerate()
            .map(|(d, &idx)| {
                let param = &space.params()[d];
                let i = (idx.round() as i64).clamp(0, param.len() as i64 - 1) as usize;
                param.values()[i].clone()
            })
            .collect();
        if let Some(i) = space.index_of(&exact) {
            return i;
        }
        let n = space.len();
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for _ in 0..self.snap_candidates.max(1) {
            let candidate = ctx.rng().gen_range(0..n);
            let indices = ctx.space().value_indices(candidate).expect("valid index");
            let dist: f64 = indices
                .iter()
                .zip(target.iter())
                .enumerate()
                .map(|(d, (&i, &t))| {
                    let scale = ctx.space().params()[d].len().max(1) as f64;
                    let diff = (i as f64 - t) / scale;
                    diff * diff
                })
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = candidate;
            }
        }
        best
    }
}

impl Strategy for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "differential-evolution"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let n = ctx.space().len();
        let dims = ctx.space().params().len();
        let pop_size = self.population_size.min(n).max(4);

        // initial population: random distinct-ish configurations
        let mut population: Vec<(usize, f64)> = Vec::with_capacity(pop_size);
        while population.len() < pop_size {
            let candidate = ctx.rng().gen_range(0..n);
            match ctx.evaluate(candidate) {
                Some(t) => population.push((candidate, t)),
                None => return,
            }
        }

        while !ctx.exhausted() {
            for i in 0..population.len() {
                // pick three distinct partners
                let mut partners = [0usize; 3];
                for slot in &mut partners {
                    loop {
                        let pick = ctx.rng().gen_range(0..population.len());
                        if pick != i {
                            *slot = pick;
                            break;
                        }
                    }
                }
                let (a, b, c) = (
                    population[partners[0]].0,
                    population[partners[1]].0,
                    population[partners[2]].0,
                );
                let target_indices = ctx
                    .space()
                    .value_indices(population[i].0)
                    .expect("valid")
                    .to_vec();
                let ai = ctx.space().value_indices(a).expect("valid").to_vec();
                let bi = ctx.space().value_indices(b).expect("valid").to_vec();
                let ci = ctx.space().value_indices(c).expect("valid").to_vec();

                // mutation + binomial crossover in index space
                let forced = ctx.rng().gen_range(0..dims);
                let mut trial = vec![0.0f64; dims];
                for d in 0..dims {
                    let mutant =
                        ai[d] as f64 + self.differential_weight * (bi[d] as f64 - ci[d] as f64);
                    let cross = ctx.rng().gen_bool(self.crossover_rate) || d == forced;
                    trial[d] = if cross {
                        mutant
                    } else {
                        target_indices[d] as f64
                    };
                }

                let candidate = self.snap(ctx, &trial);
                let candidate_time = match ctx.evaluate(candidate) {
                    Some(t) => t,
                    None => return,
                };
                if candidate_time < population[i].1 {
                    population[i] = (candidate, candidate_time);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn de_improves_and_stays_valid() {
        let spec = SearchSpaceSpec::new("de")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("t", [1, 2, 4, 8]))
            .with_expr("16 <= x * y <= 2048")
            .with_expr("t <= y");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 13);
        let run = tune(
            &space,
            &model,
            &DifferentialEvolution::default(),
            Duration::from_secs(60),
            Duration::ZERO,
            21,
        );
        assert!(run.num_evaluations() > 10);
        for e in &run.evaluations {
            assert!(space.get(e.config_index).is_some());
        }
        let initial_best = run.evaluations[..DifferentialEvolution::default()
            .population_size
            .min(run.num_evaluations())]
            .iter()
            .map(|e| e.runtime_ms)
            .fold(f64::INFINITY, f64::min);
        assert!(run.best_runtime_ms().unwrap() <= initial_best);
    }
}
