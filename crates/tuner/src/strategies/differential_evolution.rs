//! Differential evolution adapted to discrete, constrained spaces.
//!
//! Individuals live in the per-parameter *value code* space. The classic
//! DE/rand/1/bin mutation `a + F * (b - c)` is computed on code vectors,
//! rounded, clamped to each parameter's code range and then snapped to a
//! valid configuration: if the mutant is not in the resolved search space the
//! nearest valid configuration (normalized code distance) among a bounded
//! candidate sample is used. This mirrors how Kernel Tuner adapts continuous
//! strategies to constrained discrete spaces via the `SearchSpace`. The whole
//! strategy works on encoded rows and the [`ConfigId`] fast path — no
//! configuration is ever decoded to values.
//!
//! The generation is the batch: all trial vectors are built serially (the
//! RNG draws stay in proposal order), then the whole generation is submitted
//! through [`TuningContext::evaluate_batch`] and selection happens
//! element-wise against the previous population.

use rand::Rng;

use at_searchspace::ConfigId;

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// DE/rand/1/bin over configuration value codes.
#[derive(Debug, Clone, Copy)]
pub struct DifferentialEvolution {
    /// Population size (and trial batch size per generation).
    pub population_size: usize,
    /// Differential weight `F`.
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_rate: f64,
    /// How many random valid configurations to consider when snapping an
    /// invalid mutant back into the space.
    pub snap_candidates: usize,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        DifferentialEvolution {
            population_size: 20,
            differential_weight: 0.7,
            crossover_rate: 0.8,
            snap_candidates: 64,
        }
    }
}

impl DifferentialEvolution {
    /// Snap a code vector to a valid configuration id: exact hit through the
    /// encoded-row fast path if the corresponding configuration exists,
    /// otherwise the nearest of a random sample of valid configurations.
    fn snap(&self, ctx: &mut TuningContext<'_>, target: &[f64]) -> ConfigId {
        let space = ctx.space();
        let exact: Vec<u32> = target
            .iter()
            .zip(space.params().iter())
            .map(|(&code, param)| (code.round() as i64).clamp(0, param.len() as i64 - 1) as u32)
            .collect();
        if let Some(id) = space.index_of_codes(&exact) {
            return id;
        }
        let n = space.len();
        let mut best = ConfigId::from_index(0);
        let mut best_dist = f64::INFINITY;
        for _ in 0..self.snap_candidates.max(1) {
            let candidate = ConfigId::from_index(ctx.rng().gen_range(0..n));
            let space = ctx.space();
            let codes = space.codes_of(candidate).expect("valid id");
            let dist: f64 = codes
                .iter()
                .zip(target.iter())
                .zip(space.params().iter())
                .map(|((&c, &t), param)| {
                    let scale = param.len().max(1) as f64;
                    let diff = (c as f64 - t) / scale;
                    diff * diff
                })
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = candidate;
            }
        }
        best
    }
}

impl Strategy for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "differential-evolution"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let n = ctx.space().len();
        let dims = ctx.space().params().len();
        let pop_size = self.population_size.min(n).max(4);

        // initial population: one batch of random configurations (sampled
        // with replacement; the engine dedups in-batch repeats)
        let seeds: Vec<ConfigId> = (0..pop_size)
            .map(|_| ConfigId::from_index(ctx.rng().gen_range(0..n)))
            .collect();
        let outcomes = ctx.evaluate_batch(&seeds);
        let mut population: Vec<(ConfigId, f64)> = seeds
            .iter()
            .zip(&outcomes)
            .filter_map(|(&id, o)| o.runtime().map(|t| (id, t)))
            .collect();
        if out_of_budget(&outcomes) || population.len() < 4 {
            return;
        }

        while !ctx.exhausted() {
            // build the whole generation of trial configurations first
            let mut trials: Vec<ConfigId> = Vec::with_capacity(population.len());
            for i in 0..population.len() {
                // pick three distinct partners
                let mut partners = [0usize; 3];
                for slot in &mut partners {
                    loop {
                        let pick = ctx.rng().gen_range(0..population.len());
                        if pick != i {
                            *slot = pick;
                            break;
                        }
                    }
                }
                let (a, b, c) = (
                    population[partners[0]].0,
                    population[partners[1]].0,
                    population[partners[2]].0,
                );
                // mutation + binomial crossover in code space: borrow the
                // four encoded rows straight from the arena (no decode, no
                // clone — `space()` outlives the `rng()` borrows below)
                let space = ctx.space();
                let ai = space.codes_of(a).expect("valid id");
                let bi = space.codes_of(b).expect("valid id");
                let ci = space.codes_of(c).expect("valid id");
                let target = space.codes_of(population[i].0).expect("valid id");
                let forced = ctx.rng().gen_range(0..dims);
                let mut trial = vec![0.0f64; dims];
                for (d, slot) in trial.iter_mut().enumerate() {
                    let mutant =
                        ai[d] as f64 + self.differential_weight * (bi[d] as f64 - ci[d] as f64);
                    let cross = ctx.rng().gen_bool(self.crossover_rate) || d == forced;
                    *slot = if cross { mutant } else { target[d] as f64 };
                }
                trials.push(self.snap(ctx, &trial));
            }

            // one batch per generation, then element-wise selection
            let outcomes = ctx.evaluate_batch(&trials);
            for ((&trial, outcome), incumbent) in
                trials.iter().zip(&outcomes).zip(population.iter_mut())
            {
                if let Some(t) = outcome.runtime() {
                    if t < incumbent.1 {
                        *incumbent = (trial, t);
                    }
                }
            }
            if out_of_budget(&outcomes) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn de_improves_and_stays_valid() {
        let spec = SearchSpaceSpec::new("de")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("t", [1, 2, 4, 8]))
            .with_expr("16 <= x * y <= 2048")
            .with_expr("t <= y");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 13);
        let run = tune(
            &space,
            &model,
            &DifferentialEvolution::default(),
            Duration::from_secs(60),
            Duration::ZERO,
            21,
        );
        assert!(run.num_evaluations() > 10);
        for e in &run.evaluations {
            assert!(space.view(e.config_index).is_some());
        }
        // snapping keeps every proposal inside the space
        assert_eq!(run.metrics.rejected, 0);
        let initial_best = run.evaluations[..DifferentialEvolution::default()
            .population_size
            .min(run.num_evaluations())]
            .iter()
            .map(|e| e.runtime_ms)
            .fold(f64::INFINITY, f64::min);
        assert!(run.best_runtime_ms().unwrap() <= initial_best);
    }
}
