//! Simulated annealing over valid neighbors.

use rand::Rng;

use at_searchspace::{neighbors, ConfigId, NeighborIndex, NeighborMethod};

use crate::tuning::{Strategy, TuningContext};

/// Simulated annealing: random neighbor moves accepted with a
/// temperature-dependent Metropolis criterion. The Markov chain makes each
/// proposal depend on the previous acceptance, so SA is inherently
/// sequential: it drives the batch engine with batches of one
/// ([`TuningContext::evaluate_one`]).
#[derive(Debug, Clone, Copy)]
pub struct SimulatedAnnealing {
    /// Initial temperature relative to the first measured runtime.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied per move.
    pub cooling: f64,
    /// Neighbor definition used for proposals.
    pub neighbor_method: NeighborMethod,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temperature: 0.5,
            cooling: 0.98,
            neighbor_method: NeighborMethod::Hamming,
        }
    }
}

impl Strategy for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "simulated-annealing"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let index = NeighborIndex::build(ctx.space());
        let n = ctx.space().len();
        let mut current = ConfigId::from_index(ctx.rng().gen_range(0..n));
        let mut current_time = match ctx.evaluate_one(current).runtime() {
            Some(t) => t,
            None => return,
        };
        let mut temperature = self.initial_temperature * current_time;
        while !ctx.exhausted() {
            let neighbor_list = neighbors(ctx.space(), current, self.neighbor_method, Some(&index));
            if neighbor_list.is_empty() {
                // isolated configuration: restart somewhere else
                current = ConfigId::from_index(ctx.rng().gen_range(0..n));
                current_time = match ctx.evaluate_one(current).runtime() {
                    Some(t) => t,
                    None => return,
                };
                continue;
            }
            let pick = neighbor_list[ctx.rng().gen_range(0..neighbor_list.len())];
            let candidate_time = match ctx.evaluate_one(pick).runtime() {
                Some(t) => t,
                None => return,
            };
            let delta = candidate_time - current_time;
            let accept = delta <= 0.0 || {
                let p = (-delta / temperature.max(1e-9)).exp();
                ctx.rng().gen_bool(p.clamp(0.0, 1.0))
            };
            if accept {
                current = pick;
                current_time = candidate_time;
            }
            temperature *= self.cooling;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn improves_over_the_initial_configuration() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("8 <= x * y <= 2048");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 23);
        let run = tune(
            &space,
            &model,
            &SimulatedAnnealing::default(),
            Duration::from_secs(60),
            Duration::ZERO,
            5,
        );
        assert!(run.best_runtime_ms().unwrap() <= run.evaluations[0].runtime_ms);
        assert!(run.num_evaluations() > 5);
        // SA drives the engine strictly with batches of one
        assert_eq!(run.metrics.largest_batch, 1);
    }
}
