//! A genetic algorithm using valid-neighbor mutation.
//!
//! The mutation step illustrates why the resolved `SearchSpace` matters: a
//! mutated individual is chosen among the *valid* Hamming neighbors of its
//! parent (Section 4.4), so the GA never wastes evaluations on configurations
//! that violate constraints.
//!
//! The algorithm is generational (µ+λ): each generation proposes a full
//! batch of offspring through [`TuningContext::evaluate_batch`], so the
//! engine can measure the whole generation in parallel, then parents and
//! offspring compete for the next generation's population slots.

use rand::seq::SliceRandom;
use rand::Rng;

use at_searchspace::{neighbors, ConfigId, NeighborIndex, NeighborMethod};

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// A generational (µ+λ) genetic algorithm over configuration indices.
#[derive(Debug, Clone, Copy)]
pub struct GeneticAlgorithm {
    /// Population size (and offspring batch size per generation).
    pub population_size: usize,
    /// Probability of mutating an offspring to a random valid neighbor.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm {
            population_size: 16,
            mutation_rate: 0.3,
            tournament: 3,
        }
    }
}

impl GeneticAlgorithm {
    /// Single-point crossover on the encoded code rows, snapped back into
    /// the valid space through the hash index — no `Value` is ever cloned.
    /// Returns `None` when the offspring is not a valid configuration.
    fn crossover(
        &self,
        ctx: &mut TuningContext<'_>,
        parent_a: ConfigId,
        parent_b: ConfigId,
    ) -> Option<ConfigId> {
        let dims = ctx.space().num_params();
        let cut = ctx.rng().gen_range(1..dims.max(2));
        let space = ctx.space();
        let a = space.codes_of(parent_a)?;
        let b = space.codes_of(parent_b)?;
        let mut child = Vec::with_capacity(dims);
        child.extend_from_slice(&a[..cut.min(a.len())]);
        child.extend_from_slice(&b[cut.min(b.len())..]);
        space.index_of_codes(&child)
    }

    /// Tournament selection from the current population.
    fn select(&self, ctx: &mut TuningContext<'_>, population: &[(ConfigId, f64)]) -> ConfigId {
        let mut best: Option<(ConfigId, f64)> = None;
        for _ in 0..self.tournament {
            let pick = population[ctx.rng().gen_range(0..population.len())];
            if best.map(|b| pick.1 < b.1).unwrap_or(true) {
                best = Some(pick);
            }
        }
        best.expect("non-empty population").0
    }
}

impl Strategy for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "genetic-algorithm"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let index = NeighborIndex::build(ctx.space());
        let n = ctx.space().len();
        let pop_size = self.population_size.min(n).max(2);

        // initial population: one batch of distinct random configurations
        let mut all: Vec<ConfigId> = ctx.space().ids().collect();
        all.shuffle(ctx.rng());
        let seeds = &all[..pop_size];
        let outcomes = ctx.evaluate_batch(seeds);
        let mut population: Vec<(ConfigId, f64)> = seeds
            .iter()
            .zip(&outcomes)
            .filter_map(|(&id, o)| o.runtime().map(|t| (id, t)))
            .collect();
        if out_of_budget(&outcomes) || population.len() < 2 {
            return;
        }

        while !ctx.exhausted() {
            // propose a whole generation of offspring
            let mut offspring: Vec<ConfigId> = Vec::with_capacity(pop_size);
            for _ in 0..pop_size {
                let parent_a = self.select(ctx, &population);
                let parent_b = self.select(ctx, &population);

                // crossover, falling back to a parent when the child is invalid
                let mut child = self.crossover(ctx, parent_a, parent_b).unwrap_or(parent_a);

                // mutation: jump to a random valid Hamming neighbor
                if ctx.rng().gen_bool(self.mutation_rate) {
                    let neighbor_list =
                        neighbors(ctx.space(), child, NeighborMethod::Hamming, Some(&index));
                    if !neighbor_list.is_empty() {
                        child = neighbor_list[ctx.rng().gen_range(0..neighbor_list.len())];
                    }
                }
                offspring.push(child);
            }

            let outcomes = ctx.evaluate_batch(&offspring);
            population.extend(
                offspring
                    .iter()
                    .zip(&outcomes)
                    .filter_map(|(&id, o)| o.runtime().map(|t| (id, t))),
            );

            // µ+λ survivor selection: best distinct individuals, ties broken
            // by id so the outcome is deterministic
            population.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("no NaN runtimes")
                    .then_with(|| a.0.index().cmp(&b.0.index()))
            });
            population.dedup_by_key(|p| p.0);
            population.truncate(pop_size);

            if out_of_budget(&outcomes) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn ga_improves_over_initial_population_average() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("t", [1, 2, 4]))
            .with_expr("32 <= x * y <= 2048")
            .with_expr("t <= y");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 31);
        let ga = GeneticAlgorithm::default();
        let run = tune(
            &space,
            &model,
            &ga,
            Duration::from_secs(60),
            Duration::ZERO,
            77,
        );
        let initial_avg: f64 = run.evaluations[..ga.population_size.min(run.num_evaluations())]
            .iter()
            .map(|e| e.runtime_ms)
            .sum::<f64>()
            / ga.population_size.min(run.num_evaluations()) as f64;
        assert!(run.best_runtime_ms().unwrap() < initial_avg);
    }

    #[test]
    fn ga_only_evaluates_valid_configurations() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y == 64");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 2);
        let run = tune(
            &space,
            &model,
            &GeneticAlgorithm::default(),
            Duration::from_secs(20),
            Duration::ZERO,
            8,
        );
        for e in &run.evaluations {
            assert!(space.view(e.config_index).is_some());
        }
        // the GA proposes no out-of-space ids, only possibly-duplicate ones
        assert_eq!(run.metrics.rejected, 0);
    }

    #[test]
    fn ga_proposes_whole_generations() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("32 <= x * y <= 2048");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 31);
        let ga = GeneticAlgorithm::default();
        let run = tune(
            &space,
            &model,
            &ga,
            Duration::from_secs(30),
            Duration::ZERO,
            77,
        );
        assert_eq!(run.metrics.largest_batch, ga.population_size);
        assert!(run.metrics.batches >= 2);
    }
}
