//! Particle swarm optimization over the value-index space.
//!
//! Kernel Tuner ships a PSO strategy that treats each configuration as a
//! point in the per-parameter *value code* space: particle positions are
//! continuous vectors, and every evaluation snaps the position to a valid
//! configuration of the resolved search space. The snap step is where the
//! `SearchSpace` abstraction matters — without the resolved space, a
//! particle landing on an invalid combination would waste a kernel
//! compilation just to discover the constraint violation. Snapping first
//! tries the exact rounded position through the encoded-row hash index and
//! only falls back to a bounded random sample of valid configurations, so
//! snap cost is independent of space size.
//!
//! The swarm moves *synchronously*: every particle updates its velocity
//! against the previous generation's global best, the whole swarm is
//! evaluated as one batch, and personal/global bests are updated afterwards
//! — the classic synchronous PSO formulation, and exactly what the batch
//! engine wants.

use rand::Rng;

use at_searchspace::ConfigId;

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// Particle swarm optimization with inertia and cognitive/social attraction.
#[derive(Debug, Clone, Copy)]
pub struct ParticleSwarm {
    /// Number of particles (and batch size per iteration).
    pub swarm_size: usize,
    /// Velocity inertia weight.
    pub inertia: f64,
    /// Attraction towards the particle's own best position.
    pub cognitive: f64,
    /// Attraction towards the swarm's best position.
    pub social: f64,
    /// How many random valid configurations to consider when the rounded
    /// position is not itself a valid configuration.
    pub snap_candidates: usize,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            swarm_size: 12,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
            snap_candidates: 64,
        }
    }
}

struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_time: f64,
}

impl ParticleSwarm {
    /// Snap a continuous position in value-code space to a valid
    /// configuration id: exact hit through the encoded-row hash index when
    /// the rounded position is valid, otherwise the nearest (normalized code
    /// distance) of a bounded random sample of valid configurations.
    fn snap(&self, ctx: &mut TuningContext<'_>, position: &[f64]) -> ConfigId {
        let space = ctx.space();
        let exact: Vec<u32> = position
            .iter()
            .zip(space.params().iter())
            .map(|(&p, param)| (p.round() as i64).clamp(0, param.len() as i64 - 1) as u32)
            .collect();
        if let Some(id) = space.index_of_codes(&exact) {
            return id;
        }
        let n = space.len();
        let mut best = ConfigId::from_index(0);
        let mut best_dist = f64::INFINITY;
        for _ in 0..self.snap_candidates.max(1) {
            let candidate = ConfigId::from_index(ctx.rng().gen_range(0..n));
            let space = ctx.space();
            let codes = space.codes_of(candidate).expect("valid id");
            let dist: f64 = codes
                .iter()
                .zip(position.iter())
                .zip(space.params().iter())
                .map(|((&c, &p), param)| {
                    let scale = param.len().max(1) as f64;
                    let d = (c as f64 - p) / scale;
                    d * d
                })
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = candidate;
            }
        }
        best
    }

    fn random_position(ctx: &mut TuningContext<'_>) -> Vec<f64> {
        let sizes: Vec<usize> = ctx.space().params().iter().map(|p| p.len()).collect();
        sizes
            .iter()
            .map(|&s| ctx.rng().gen_range(0.0..s.max(1) as f64))
            .collect()
    }
}

impl Strategy for ParticleSwarm {
    fn name(&self) -> &'static str {
        "particle-swarm"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let dims = ctx.space().params().len();
        let swarm_size = self.swarm_size.clamp(2, ctx.space().len().max(2));

        // initialize the swarm: one batch over all starting positions
        let mut swarm: Vec<Particle> = Vec::with_capacity(swarm_size);
        let mut configs: Vec<ConfigId> = Vec::with_capacity(swarm_size);
        for _ in 0..swarm_size {
            let position = Self::random_position(ctx);
            configs.push(self.snap(ctx, &position));
            swarm.push(Particle {
                best_position: position.clone(),
                best_time: f64::INFINITY,
                position,
                velocity: vec![0.0; dims],
            });
        }
        let outcomes = ctx.evaluate_batch(&configs);
        let mut global_best_position: Option<Vec<f64>> = None;
        let mut global_best_time = f64::INFINITY;
        for (p, outcome) in swarm.iter_mut().zip(&outcomes) {
            if let Some(time) = outcome.runtime() {
                p.best_time = time;
                if time < global_best_time {
                    global_best_time = time;
                    global_best_position = Some(p.position.clone());
                }
            }
        }
        if out_of_budget(&outcomes) || global_best_position.is_none() {
            return;
        }

        let sizes: Vec<f64> = ctx
            .space()
            .params()
            .iter()
            .map(|p| p.len().max(1) as f64)
            .collect();

        while !ctx.exhausted() {
            // move every particle against the previous generation's global
            // best, collecting the whole swarm as one batch
            let global = global_best_position
                .as_ref()
                .expect("set during initialization")
                .clone();
            configs.clear();
            for p in &mut swarm {
                for d in 0..dims {
                    let r1: f64 = ctx.rng().gen();
                    let r2: f64 = ctx.rng().gen();
                    p.velocity[d] = self.inertia * p.velocity[d]
                        + self.cognitive * r1 * (p.best_position[d] - p.position[d])
                        + self.social * r2 * (global[d] - p.position[d]);
                    // clamp the step to the parameter range to avoid divergence
                    let limit = sizes[d];
                    p.velocity[d] = p.velocity[d].clamp(-limit, limit);
                    p.position[d] = (p.position[d] + p.velocity[d]).clamp(0.0, limit - 1.0);
                }
            }
            for p in &swarm {
                configs.push(self.snap(ctx, &p.position));
            }

            let outcomes = ctx.evaluate_batch(&configs);
            for (p, outcome) in swarm.iter_mut().zip(&outcomes) {
                if let Some(time) = outcome.runtime() {
                    if time < p.best_time {
                        p.best_time = time;
                        p.best_position = p.position.clone();
                    }
                    if time < global_best_time {
                        global_best_time = time;
                        global_best_position = Some(p.position.clone());
                    }
                }
            }
            if out_of_budget(&outcomes) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("pso")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("w", [1, 2, 4]))
            .with_expr("16 <= x * y <= 2048");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn pso_only_evaluates_valid_configurations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 5);
        let run = tune(
            &s,
            &k,
            &ParticleSwarm::default(),
            Duration::from_secs(10),
            Duration::ZERO,
            21,
        );
        assert!(run.num_evaluations() > 0);
        for e in &run.evaluations {
            assert!(s.view(e.config_index).is_some());
        }
        // snapping keeps every proposal inside the space
        assert_eq!(run.metrics.rejected, 0);
    }

    #[test]
    fn pso_improves_over_initial_swarm_average() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 13);
        let pso = ParticleSwarm::default();
        let run = tune(&s, &k, &pso, Duration::from_secs(60), Duration::ZERO, 3);
        let init = pso.swarm_size.min(run.num_evaluations());
        let initial_avg: f64 = run.evaluations[..init]
            .iter()
            .map(|e| e.runtime_ms)
            .sum::<f64>()
            / init as f64;
        assert!(run.best_runtime_ms().unwrap() < initial_avg);
    }

    #[test]
    fn snap_returns_a_valid_index() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let backend = crate::eval::ModelBackend::new(&k);
        let mut ctx = crate::tuning::TuningContext::new(
            &s,
            &backend,
            Duration::from_secs(1),
            Duration::ZERO,
            1,
            crate::eval::EvalOptions::default(),
        );
        let pso = ParticleSwarm::default();
        let pos = ParticleSwarm::random_position(&mut ctx);
        let id = pso.snap(&mut ctx, &pos);
        assert!(id.index() < s.len());
    }
}
