//! Particle swarm optimization over the value-index space.
//!
//! Kernel Tuner ships a PSO strategy that treats each configuration as a
//! point in the per-parameter *value code* space: particle positions are
//! continuous vectors, and every evaluation snaps the position to the nearest
//! valid configuration of the resolved search space. The snap step is where
//! the `SearchSpace` abstraction matters — without the resolved space, a
//! particle landing on an invalid combination would waste a kernel
//! compilation just to discover the constraint violation. Snapping scans the
//! encoded arena directly.

use rand::Rng;

use at_searchspace::ConfigId;

use crate::tuning::{Strategy, TuningContext};

/// Particle swarm optimization with inertia and cognitive/social attraction.
#[derive(Debug, Clone, Copy)]
pub struct ParticleSwarm {
    /// Number of particles.
    pub swarm_size: usize,
    /// Velocity inertia weight.
    pub inertia: f64,
    /// Attraction towards the particle's own best position.
    pub cognitive: f64,
    /// Attraction towards the swarm's best position.
    pub social: f64,
}

impl Default for ParticleSwarm {
    fn default() -> Self {
        ParticleSwarm {
            swarm_size: 12,
            inertia: 0.7,
            cognitive: 1.5,
            social: 1.5,
        }
    }
}

struct Particle {
    position: Vec<f64>,
    velocity: Vec<f64>,
    best_position: Vec<f64>,
    best_time: f64,
}

impl ParticleSwarm {
    /// Snap a continuous position in value-code space to the nearest valid
    /// configuration (Euclidean distance over value codes), returning its id.
    fn snap(ctx: &TuningContext<'_>, position: &[f64]) -> ConfigId {
        let space = ctx.space();
        let mut best = ConfigId::from_index(0);
        let mut best_dist = f64::INFINITY;
        for id in space.ids() {
            let codes = space.codes_of(id).expect("id in range");
            let dist: f64 = codes
                .iter()
                .zip(position.iter())
                .map(|(&code, &p)| {
                    let d = code as f64 - p;
                    d * d
                })
                .sum();
            if dist < best_dist {
                best_dist = dist;
                best = id;
            }
        }
        best
    }

    fn random_position(ctx: &mut TuningContext<'_>) -> Vec<f64> {
        let sizes: Vec<usize> = ctx.space().params().iter().map(|p| p.len()).collect();
        sizes
            .iter()
            .map(|&s| ctx.rng().gen_range(0.0..s.max(1) as f64))
            .collect()
    }
}

impl Strategy for ParticleSwarm {
    fn name(&self) -> &'static str {
        "particle-swarm"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let dims = ctx.space().params().len();
        let swarm_size = self.swarm_size.clamp(2, ctx.space().len().max(2));

        // initialize the swarm
        let mut swarm: Vec<Particle> = Vec::with_capacity(swarm_size);
        let mut global_best_position: Option<Vec<f64>> = None;
        let mut global_best_time = f64::INFINITY;
        for _ in 0..swarm_size {
            let position = Self::random_position(ctx);
            let velocity = vec![0.0; dims];
            let config = Self::snap(ctx, &position);
            let time = match ctx.evaluate(config) {
                Some(t) => t,
                None => return,
            };
            if time < global_best_time {
                global_best_time = time;
                global_best_position = Some(position.clone());
            }
            swarm.push(Particle {
                best_position: position.clone(),
                best_time: time,
                position,
                velocity,
            });
        }

        let sizes: Vec<f64> = ctx
            .space()
            .params()
            .iter()
            .map(|p| p.len().max(1) as f64)
            .collect();

        while !ctx.exhausted() {
            for p in &mut swarm {
                let global = global_best_position
                    .as_ref()
                    .expect("set during initialization")
                    .clone();
                for d in 0..dims {
                    let r1: f64 = ctx.rng().gen();
                    let r2: f64 = ctx.rng().gen();
                    p.velocity[d] = self.inertia * p.velocity[d]
                        + self.cognitive * r1 * (p.best_position[d] - p.position[d])
                        + self.social * r2 * (global[d] - p.position[d]);
                    // clamp the step to the parameter range to avoid divergence
                    let limit = sizes[d];
                    p.velocity[d] = p.velocity[d].clamp(-limit, limit);
                    p.position[d] = (p.position[d] + p.velocity[d]).clamp(0.0, limit - 1.0);
                }
                let config = Self::snap(ctx, &p.position);
                let time = match ctx.evaluate(config) {
                    Some(t) => t,
                    None => return,
                };
                if time < p.best_time {
                    p.best_time = time;
                    p.best_position = p.position.clone();
                }
                if time < global_best_time {
                    global_best_time = time;
                    global_best_position = Some(p.position.clone());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("pso")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("w", [1, 2, 4]))
            .with_expr("16 <= x * y <= 2048");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn pso_only_evaluates_valid_configurations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 5);
        let run = tune(
            &s,
            &k,
            &ParticleSwarm::default(),
            Duration::from_secs(10),
            Duration::ZERO,
            21,
        );
        assert!(run.num_evaluations() > 0);
        for e in &run.evaluations {
            assert!(s.view(e.config_index).is_some());
        }
    }

    #[test]
    fn pso_improves_over_initial_swarm_average() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 13);
        let pso = ParticleSwarm::default();
        let run = tune(&s, &k, &pso, Duration::from_secs(60), Duration::ZERO, 3);
        let init = pso.swarm_size.min(run.num_evaluations());
        let initial_avg: f64 = run.evaluations[..init]
            .iter()
            .map(|e| e.runtime_ms)
            .sum::<f64>()
            / init as f64;
        assert!(run.best_runtime_ms().unwrap() < initial_avg);
    }

    #[test]
    fn snap_returns_a_valid_index() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let mut ctx =
            crate::tuning::TuningContext::new(&s, &k, Duration::from_secs(1), Duration::ZERO, 1);
        let pos = ParticleSwarm::random_position(&mut ctx);
        let id = ParticleSwarm::snap(&ctx, &pos);
        assert!(id.index() < s.len());
    }
}
