//! Greedy hill climbing with random restarts.

use rand::Rng;

use at_searchspace::{neighbors, ConfigId, NeighborIndex, NeighborMethod};

use crate::tuning::{Strategy, TuningContext};

/// Greedy first-improvement hill climbing over Hamming-distance-1 neighbors,
/// restarting from a random configuration at local optima.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbing {
    /// Neighbor definition used for the climb.
    pub neighbor_method: NeighborMethod,
}

impl Default for HillClimbing {
    fn default() -> Self {
        HillClimbing {
            neighbor_method: NeighborMethod::Hamming,
        }
    }
}

impl Strategy for HillClimbing {
    fn name(&self) -> &'static str {
        "hill-climbing"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let index = NeighborIndex::build(ctx.space());
        let n = ctx.space().len();
        while !ctx.exhausted() {
            // random restart
            let mut current = ConfigId::from_index(ctx.rng().gen_range(0..n));
            let mut current_time = match ctx.evaluate(current) {
                Some(t) => t,
                None => return,
            };
            loop {
                let mut improved = false;
                let neighbor_list =
                    neighbors(ctx.space(), current, self.neighbor_method, Some(&index));
                for candidate in neighbor_list {
                    match ctx.evaluate(candidate) {
                        Some(t) => {
                            if t < current_time {
                                current = candidate;
                                current_time = t;
                                improved = true;
                                break; // first improvement
                            }
                        }
                        None => return,
                    }
                }
                if !improved {
                    break; // local optimum: restart
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn descends_to_a_local_optimum() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 17);
        let run = tune(
            &space,
            &model,
            &HillClimbing::default(),
            Duration::from_secs(30),
            Duration::ZERO,
            99,
        );
        let best = run.best_runtime_ms().unwrap();
        // the final best must be no worse than the first random start
        assert!(best <= run.evaluations[0].runtime_ms);
    }
}
