//! Greedy hill climbing with random restarts.

use rand::Rng;

use at_searchspace::{neighbors, ConfigId, NeighborIndex, NeighborMethod};

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// Greedy hill climbing over Hamming-distance-1 neighbors, restarting from a
/// random configuration at local optima. Each step proposes the *entire*
/// neighbor ring as one batch (so the engine can measure it in parallel) and
/// moves to the best improving neighbor — steepest descent rather than the
/// first-improvement walk the serial evaluator forced.
#[derive(Debug, Clone, Copy)]
pub struct HillClimbing {
    /// Neighbor definition used for the climb.
    pub neighbor_method: NeighborMethod,
}

impl Default for HillClimbing {
    fn default() -> Self {
        HillClimbing {
            neighbor_method: NeighborMethod::Hamming,
        }
    }
}

impl Strategy for HillClimbing {
    fn name(&self) -> &'static str {
        "hill-climbing"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let index = NeighborIndex::build(ctx.space());
        let n = ctx.space().len();
        while !ctx.exhausted() {
            // random restart
            let current = ConfigId::from_index(ctx.rng().gen_range(0..n));
            let start = ctx.evaluate_one(current);
            if start.is_out_of_budget() {
                return;
            }
            let Some(mut current_time) = start.runtime() else {
                continue;
            };
            let mut current = current;
            loop {
                let ring = neighbors(ctx.space(), current, self.neighbor_method, Some(&index));
                let outcomes = ctx.evaluate_batch(&ring);
                // steepest descent: best improving neighbor, if any
                let mut best: Option<(ConfigId, f64)> = None;
                for (&candidate, outcome) in ring.iter().zip(&outcomes) {
                    if let Some(t) = outcome.runtime() {
                        if t < current_time && best.map(|(_, bt)| t < bt).unwrap_or(true) {
                            best = Some((candidate, t));
                        }
                    }
                }
                if out_of_budget(&outcomes) {
                    return;
                }
                match best {
                    Some((next, t)) => {
                        current = next;
                        current_time = t;
                    }
                    None => break, // local optimum: restart
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    #[test]
    fn descends_to_a_local_optimum() {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let model = SyntheticKernel::for_space(&space, 17);
        let run = tune(
            &space,
            &model,
            &HillClimbing::default(),
            Duration::from_secs(30),
            Duration::ZERO,
            99,
        );
        let best = run.best_runtime_ms().unwrap();
        // the final best must be no worse than the first random start
        assert!(best <= run.evaluations[0].runtime_ms);
    }
}
