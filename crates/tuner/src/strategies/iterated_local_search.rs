//! Iterated local search (ILS).
//!
//! ILS alternates greedy local search with a perturbation step: after
//! reaching a local optimum it jumps a few random Hamming steps away and
//! restarts the descent from there, accepting the new local optimum only if
//! it improves on the incumbent. Kernel Tuner ships this as `greedy_ils`; it
//! tends to outperform plain restarts on the plateau-rich landscapes of GPU
//! tuning spaces. The descent proposes each neighbor ring as one batch, so
//! the engine can measure the ring in parallel.

use rand::Rng;

use at_searchspace::{neighbors, ConfigId, NeighborIndex, NeighborMethod};

use crate::eval::out_of_budget;
use crate::tuning::{Strategy, TuningContext};

/// Iterated local search over Hamming-distance-1 neighborhoods.
#[derive(Debug, Clone, Copy)]
pub struct IteratedLocalSearch {
    /// Number of random Hamming steps applied by the perturbation.
    pub perturbation_strength: usize,
    /// Neighbor definition used for both descent and perturbation.
    pub neighbor_method: NeighborMethod,
    /// Accept a worse local optimum with this probability (a small amount of
    /// diversification keeps the walk from cycling between two basins).
    pub accept_worse_probability: f64,
}

impl Default for IteratedLocalSearch {
    fn default() -> Self {
        IteratedLocalSearch {
            perturbation_strength: 3,
            neighbor_method: NeighborMethod::Hamming,
            accept_worse_probability: 0.05,
        }
    }
}

impl IteratedLocalSearch {
    /// Greedy best-improvement descent from `start`, batching each neighbor
    /// ring. Returns the local optimum and its runtime, or `None` when the
    /// budget ran out.
    fn descend(
        &self,
        ctx: &mut TuningContext<'_>,
        index: &NeighborIndex,
        start: ConfigId,
        start_time: f64,
    ) -> Option<(ConfigId, f64)> {
        let mut current = start;
        let mut current_time = start_time;
        loop {
            let ring = neighbors(ctx.space(), current, self.neighbor_method, Some(index));
            let outcomes = ctx.evaluate_batch(&ring);
            let mut best_neighbor: Option<(ConfigId, f64)> = None;
            for (&candidate, outcome) in ring.iter().zip(&outcomes) {
                if let Some(t) = outcome.runtime() {
                    if t < current_time && best_neighbor.map(|(_, bt)| t < bt).unwrap_or(true) {
                        best_neighbor = Some((candidate, t));
                    }
                }
            }
            if out_of_budget(&outcomes) {
                return None;
            }
            match best_neighbor {
                Some((next, t)) => {
                    current = next;
                    current_time = t;
                }
                None => return Some((current, current_time)),
            }
        }
    }

    /// Random walk of `perturbation_strength` neighbor steps from `from`.
    fn perturb(
        &self,
        ctx: &mut TuningContext<'_>,
        index: &NeighborIndex,
        from: ConfigId,
    ) -> ConfigId {
        let mut current = from;
        for _ in 0..self.perturbation_strength {
            let options = neighbors(ctx.space(), current, self.neighbor_method, Some(index));
            if options.is_empty() {
                break;
            }
            current = options[ctx.rng().gen_range(0..options.len())];
        }
        current
    }
}

impl Strategy for IteratedLocalSearch {
    fn name(&self) -> &'static str {
        "iterated-local-search"
    }

    fn run(&self, ctx: &mut TuningContext<'_>) {
        let index = NeighborIndex::build(ctx.space());
        let n = ctx.space().len();

        let start = ConfigId::from_index(ctx.rng().gen_range(0..n));
        let start_time = match ctx.evaluate_one(start).runtime() {
            Some(t) => t,
            None => return,
        };
        let mut incumbent = match self.descend(ctx, &index, start, start_time) {
            Some(opt) => opt,
            None => return,
        };

        while !ctx.exhausted() {
            let restart = self.perturb(ctx, &index, incumbent.0);
            let restart_time = match ctx.evaluate_one(restart).runtime() {
                Some(t) => t,
                None => return,
            };
            let candidate = match self.descend(ctx, &index, restart, restart_time) {
                Some(opt) => opt,
                None => return,
            };
            let accept = candidate.1 < incumbent.1
                || ctx
                    .rng()
                    .gen_bool(self.accept_worse_probability.clamp(0.0, 1.0));
            if accept {
                incumbent = candidate;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("ils")
            .with_param(TunableParameter::pow2("x", 7))
            .with_param(TunableParameter::pow2("y", 6))
            .with_param(TunableParameter::ints("w", [1, 2, 4, 8]))
            .with_expr("32 <= x * y <= 2048")
            .with_expr("w <= y");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn ils_improves_over_its_first_evaluation() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 23);
        let run = tune(
            &s,
            &k,
            &IteratedLocalSearch::default(),
            Duration::from_secs(45),
            Duration::ZERO,
            17,
        );
        assert!(run.num_evaluations() > 1);
        assert!(run.best_runtime_ms().unwrap() <= run.evaluations[0].runtime_ms);
    }

    #[test]
    fn ils_only_evaluates_valid_configurations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let run = tune(
            &s,
            &k,
            &IteratedLocalSearch::default(),
            Duration::from_secs(10),
            Duration::ZERO,
            2,
        );
        for e in &run.evaluations {
            assert!(s.view(e.config_index).is_some());
        }
    }

    #[test]
    fn ils_respects_the_budget() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 4);
        let run = tune(
            &s,
            &k,
            &IteratedLocalSearch::default(),
            Duration::from_millis(700),
            Duration::ZERO,
            6,
        );
        assert!(run.total_ms <= run.budget_ms + 1e-9);
    }
}
