//! Optimization strategies.
//!
//! The paper's end-to-end experiment uses random sampling to avoid biasing
//! the comparison towards any particular optimizer; the other strategies
//! exercise the `SearchSpace` neighbor and sampling machinery the same way
//! Kernel Tuner's optimizers do.
//!
//! All strategies drive the batched evaluation engine: population methods
//! (GA, DE, PSO) submit whole generations/swarms per call, the local
//! searches (hill climbing, ILS) submit neighbor rings, random sampling
//! submits fixed-size chunks of its shuffled order, and simulated annealing
//! — inherently sequential — submits batches of one.

mod differential_evolution;
mod genetic;
mod hill_climbing;
mod iterated_local_search;
mod particle_swarm;
mod random_sampling;
mod simulated_annealing;

pub use differential_evolution::DifferentialEvolution;
pub use genetic::GeneticAlgorithm;
pub use hill_climbing::HillClimbing;
pub use iterated_local_search::IteratedLocalSearch;
pub use particle_swarm::ParticleSwarm;
pub use random_sampling::RandomSampling;
pub use simulated_annealing::SimulatedAnnealing;

use crate::tuning::Strategy;

/// Construct a strategy by name: `random`, `genetic`, `hill-climbing`,
/// `simulated-annealing`, `differential-evolution`, `particle-swarm`,
/// `iterated-local-search`.
pub fn strategy_by_name(name: &str) -> Option<Box<dyn Strategy>> {
    match name {
        "random" | "random-sampling" => Some(Box::new(RandomSampling)),
        "genetic" | "ga" => Some(Box::new(GeneticAlgorithm::default())),
        "hill-climbing" | "greedy" => Some(Box::new(HillClimbing::default())),
        "simulated-annealing" | "sa" => Some(Box::new(SimulatedAnnealing::default())),
        "differential-evolution" | "de" => Some(Box::new(DifferentialEvolution::default())),
        "particle-swarm" | "pso" => Some(Box::new(ParticleSwarm::default())),
        "iterated-local-search" | "ils" => Some(Box::new(IteratedLocalSearch::default())),
        _ => None,
    }
}

/// The names of all built-in strategies (canonical spellings).
pub fn all_strategy_names() -> &'static [&'static str] {
    &[
        "random",
        "genetic",
        "hill-climbing",
        "simulated-annealing",
        "differential-evolution",
        "particle-swarm",
        "iterated-local-search",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use crate::tuning::tune;
    use at_searchspace::prelude::*;
    use std::time::Duration;

    pub(crate) fn test_space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("strategy-test")
            .with_param(TunableParameter::pow2("block_size_x", 8))
            .with_param(TunableParameter::pow2("block_size_y", 6))
            .with_param(TunableParameter::ints("tile", [1, 2, 4, 8]))
            .with_expr("32 <= block_size_x*block_size_y <= 1024")
            .with_expr("tile <= block_size_y");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn strategy_by_name_resolves() {
        for name in all_strategy_names() {
            assert!(strategy_by_name(name).is_some(), "{name}");
        }
        for alias in ["ga", "greedy", "sa", "de", "pso", "ils", "random-sampling"] {
            assert!(strategy_by_name(alias).is_some(), "{alias}");
        }
        assert!(strategy_by_name("bogus").is_none());
    }

    #[test]
    fn every_strategy_finds_a_reasonable_configuration() {
        let space = test_space();
        let model = SyntheticKernel::for_space(&space, 11);
        // global optimum by exhaustive evaluation of the model
        let best_possible = space
            .iter_decoded()
            .map(|c| {
                use crate::kernel::PerformanceModel;
                model.runtime_ms(&c)
            })
            .fold(f64::INFINITY, f64::min);
        for name in all_strategy_names() {
            let strategy = strategy_by_name(name).unwrap();
            let run = tune(
                &space,
                &model,
                strategy.as_ref(),
                Duration::from_secs(60),
                Duration::ZERO,
                1234,
            );
            let best = run.best_runtime_ms().unwrap();
            assert!(
                best <= best_possible * 1.5,
                "{name}: found {best:.3} vs optimum {best_possible:.3}"
            );
            assert!(run.num_evaluations() >= 10, "{name} evaluated too little");
        }
    }

    #[test]
    fn every_strategy_is_identical_across_thread_counts() {
        use crate::eval::EvalOptions;
        use crate::tuning::tune_with_options;
        let space = test_space();
        let model = SyntheticKernel::for_space(&space, 7);
        for name in all_strategy_names() {
            let strategy = strategy_by_name(name).unwrap();
            let budget = Duration::from_secs(5);
            let serial = tune_with_options(
                &space,
                &model,
                strategy.as_ref(),
                budget,
                Duration::ZERO,
                99,
                EvalOptions::with_threads(1),
            );
            let parallel = tune_with_options(
                &space,
                &model,
                strategy.as_ref(),
                budget,
                Duration::ZERO,
                99,
                EvalOptions::with_threads(8),
            );
            assert_eq!(serial.evaluations, parallel.evaluations, "{name}");
            assert_eq!(serial.total_ms, parallel.total_ms, "{name}");
        }
    }

    #[test]
    fn strategies_stop_when_budget_exhausted() {
        let space = test_space();
        let model = SyntheticKernel::for_space(&space, 3);
        for name in all_strategy_names() {
            let strategy = strategy_by_name(name).unwrap();
            let run = tune(
                &space,
                &model,
                strategy.as_ref(),
                Duration::from_millis(500),
                Duration::ZERO,
                5,
            );
            assert!(run.total_ms <= run.budget_ms + 1e-9, "{name}");
        }
    }
}
