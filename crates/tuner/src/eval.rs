//! The batched evaluation pipeline: backend trait, sharded eval cache and
//! per-run metrics.
//!
//! Every cost the tuner ever observes flows through [`EvalBackend`], a
//! batch-first abstraction (`&[ConfigId]` in, one [`Measurement`] per id
//! out). Strategies propose whole generations/swarms/neighbor rings per
//! call; the engine in [`crate::tuning::TuningContext`] dedups the batch,
//! fans the distinct uncached configurations out over scoped threads, and
//! merges the results back into the virtual clock in proposal order — so a
//! batched run is cost-trajectory-identical to a serial one regardless of
//! thread count. The same interface is what a future measure-on-real-
//! hardware backend plugs into: a backend only has to turn ids into
//! measurements, everything about budgets, caching and ordering lives in
//! the engine.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

use rustc_hash::FxHashMap;

use at_csp::Value;
use at_searchspace::{ConfigId, SearchSpace};

use crate::kernel::PerformanceModel;

/// One measurement produced by a backend for one configuration.
///
/// Backends must be *pure*: the same configuration always yields the same
/// measurement (bitwise). The engine relies on this for its determinism
/// guarantee — results may be computed on any worker thread, in any
/// chunking, and still merge into an identical run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Simulated (or measured) kernel runtime in milliseconds — the value
    /// strategies minimize.
    pub runtime_ms: f64,
    /// Total cost of obtaining the measurement in milliseconds
    /// (compilation, transfers, repetitions); charged to the virtual clock.
    pub cost_ms: f64,
}

/// A batch evaluation backend: the only way the tuner obtains costs.
///
/// `Sync` because the engine shares one backend reference across its
/// fan-out worker threads.
pub trait EvalBackend: Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Measure a batch of configurations against `space`.
    ///
    /// Returns exactly one entry per input id, in input order: `Some` with
    /// the measurement, or `None` when the id does not name a configuration
    /// of the space (the engine reports those as rejected proposals).
    fn evaluate_batch(&self, space: &SearchSpace, ids: &[ConfigId]) -> Vec<Option<Measurement>>;
}

/// The first [`EvalBackend`]: a [`PerformanceModel`] evaluated in-process.
///
/// Decodes each configuration into a reused buffer and asks the model for
/// its runtime and measurement cost — the exact arithmetic the pre-batch
/// tuner performed one configuration at a time.
pub struct ModelBackend<'m> {
    model: &'m dyn PerformanceModel,
}

impl<'m> ModelBackend<'m> {
    /// Wrap a performance model.
    pub fn new(model: &'m dyn PerformanceModel) -> Self {
        ModelBackend { model }
    }
}

impl EvalBackend for ModelBackend<'_> {
    fn name(&self) -> &'static str {
        "performance-model"
    }

    fn evaluate_batch(&self, space: &SearchSpace, ids: &[ConfigId]) -> Vec<Option<Measurement>> {
        // One decode buffer per call: a call is one fan-out chunk, so each
        // worker thread reuses its own buffer across its whole chunk.
        let mut config: Vec<Value> = Vec::new();
        ids.iter()
            .map(|&id| {
                let view = space.view(id)?;
                view.decode_into(&mut config);
                Some(Measurement {
                    runtime_ms: self.model.runtime_ms(&config),
                    cost_ms: self.model.measurement_cost_ms(&config),
                })
            })
            .collect()
    }
}

/// Number of lock stripes in the eval cache. A small power of two: enough
/// that concurrent fan-out workers rarely collide on a stripe, small enough
/// that draining the shards for metrics stays cheap.
const CACHE_SHARDS: usize = 16;

/// A sharded (lock-striped) evaluation cache keyed by [`ConfigId`].
///
/// Fan-out workers insert measurements concurrently as they finish (the
/// write path a real-hardware backend with asynchronous completion needs),
/// while the engine resolves cache hits serially before each fan-out. Reads
/// take a shard read lock; writes a shard write lock; ids map to shards by
/// a multiplicative hash of their index so neighboring ids spread out.
pub struct ShardedEvalCache {
    shards: [RwLock<FxHashMap<ConfigId, Measurement>>; CACHE_SHARDS],
    entries: AtomicUsize,
}

impl Default for ShardedEvalCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedEvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        ShardedEvalCache {
            shards: std::array::from_fn(|_| RwLock::new(FxHashMap::default())),
            entries: AtomicUsize::new(0),
        }
    }

    fn shard(id: ConfigId) -> usize {
        // Fibonacci hashing on the index; take the top bits so consecutive
        // ids (a shuffled prefix, a neighbor ring) land on distinct stripes.
        let mixed = (id.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> (64 - CACHE_SHARDS.trailing_zeros())) as usize
    }

    /// The cached measurement for `id`, if present.
    pub fn get(&self, id: ConfigId) -> Option<Measurement> {
        self.shards[Self::shard(id)]
            .read()
            .expect("eval cache shard poisoned")
            .get(&id)
            .copied()
    }

    /// Insert a measurement (idempotent: re-inserting keeps the first value,
    /// so a cache hit is always bitwise-identical to the first measurement).
    pub fn insert(&self, id: ConfigId, measurement: Measurement) {
        let mut shard = self.shards[Self::shard(id)]
            .write()
            .expect("eval cache shard poisoned");
        if let std::collections::hash_map::Entry::Vacant(slot) = shard.entry(id) {
            slot.insert(measurement);
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of distinct configurations cached.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How the engine runs batches: the thread fan-out width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalOptions {
    /// Worker threads for the evaluation fan-out. `1` evaluates inline;
    /// any value produces an identical run (only wall-clock time differs).
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { threads: 1 }
    }
}

impl EvalOptions {
    /// An option set with the given fan-out width (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        EvalOptions {
            threads: threads.max(1),
        }
    }
}

/// The outcome of one proposed configuration within a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalOutcome {
    /// Freshly measured; the full measurement cost was charged.
    Measured(f64),
    /// Served from the eval cache (or deduplicated within the batch); only
    /// [`crate::tuning::CACHE_HIT_COST_MS`] of framework overhead was charged.
    Cached(f64),
    /// The id does not name a configuration of the space. Nothing was
    /// charged; the proposal is counted in [`EvalMetrics::rejected`].
    Rejected,
    /// The budget was exhausted before (or by) this slot; strategies should
    /// stop proposing.
    OutOfBudget,
}

impl EvalOutcome {
    /// The runtime in milliseconds, when the proposal produced one.
    pub fn runtime(self) -> Option<f64> {
        match self {
            EvalOutcome::Measured(t) | EvalOutcome::Cached(t) => Some(t),
            EvalOutcome::Rejected | EvalOutcome::OutOfBudget => None,
        }
    }

    /// True when the budget ran out at or before this slot.
    pub fn is_out_of_budget(self) -> bool {
        matches!(self, EvalOutcome::OutOfBudget)
    }
}

/// True when any outcome in the batch reports budget exhaustion — the
/// batched counterpart of the old `evaluate(..) == None` stop signal.
pub fn out_of_budget(outcomes: &[EvalOutcome]) -> bool {
    outcomes.iter().any(|o| o.is_out_of_budget())
}

/// Counters describing the work the evaluation pipeline performed.
///
/// Everything except the `threads`/`fanout_*` fields is identical across
/// fan-out widths for a fixed seed (asserted by the determinism proptest);
/// the fan-out fields describe how the same work was scheduled.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalMetrics {
    /// Batches submitted by the strategy (a single evaluation is a batch of 1).
    pub batches: u64,
    /// Total proposals across all batches.
    pub proposed: u64,
    /// Distinct configurations measured (and charged their full cost).
    pub measured: u64,
    /// Proposals served from the eval cache (prior batches).
    pub cache_hits: u64,
    /// Proposals deduplicated within their own batch (measured once,
    /// served as hits to the duplicates).
    pub deduped: u64,
    /// Proposals whose id named no configuration of the space.
    pub rejected: u64,
    /// Proposals dropped because the budget was exhausted.
    pub out_of_budget: u64,
    /// Largest single batch.
    pub largest_batch: usize,
    /// Configured fan-out width.
    pub threads: usize,
    /// Batches whose misses were evaluated on more than one thread.
    pub fanout_batches: u64,
    /// Worker threads actually used, summed over fan-out batches.
    pub fanout_thread_slots: u64,
}

impl EvalMetrics {
    /// Fraction of proposals served without a fresh measurement.
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            (self.cache_hits + self.deduped) as f64 / self.proposed as f64
        }
    }

    /// Fraction of proposals that were in-batch duplicates.
    pub fn dedup_ratio(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.deduped as f64 / self.proposed as f64
        }
    }

    /// Mean fraction of the configured fan-out width used by parallel
    /// batches (1.0 = every fan-out batch filled all threads).
    pub fn fanout_utilization(&self) -> f64 {
        if self.fanout_batches == 0 || self.threads == 0 {
            0.0
        } else {
            self.fanout_thread_slots as f64 / (self.fanout_batches * self.threads as u64) as f64
        }
    }

    /// One-line human summary for reports.
    pub fn summary_line(&self) -> String {
        format!(
            "{} batches (largest {}), {} measured, {} hits + {} dups ({:.1}% cached), \
             {} rejected, {} over budget, fan-out {}x{} ({:.0}% util)",
            self.batches,
            self.largest_batch,
            self.measured,
            self.cache_hits,
            self.deduped,
            self.cache_hit_ratio() * 100.0,
            self.rejected,
            self.out_of_budget,
            self.threads,
            self.fanout_batches,
            self.fanout_utilization() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::SyntheticKernel;
    use at_searchspace::prelude::*;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn model_backend_matches_the_model_arithmetic() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let backend = ModelBackend::new(&k);
        let ids: Vec<ConfigId> = s.ids().take(5).collect();
        let out = backend.evaluate_batch(&s, &ids);
        assert_eq!(out.len(), ids.len());
        for (&id, m) in ids.iter().zip(&out) {
            let m = m.expect("valid id");
            let cfg = s.view(id).unwrap().to_vec();
            assert_eq!(m.runtime_ms, k.runtime_ms(&cfg));
            assert_eq!(m.cost_ms, k.measurement_cost_ms(&cfg));
        }
    }

    #[test]
    fn model_backend_rejects_out_of_space_ids() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 3);
        let backend = ModelBackend::new(&k);
        let out = backend.evaluate_batch(&s, &[ConfigId::from_index(s.len())]);
        assert_eq!(out, vec![None]);
    }

    #[test]
    fn sharded_cache_round_trips_and_counts() {
        let cache = ShardedEvalCache::new();
        assert!(cache.is_empty());
        let m = Measurement {
            runtime_ms: 1.25,
            cost_ms: 58.75,
        };
        for i in 0..100 {
            cache.insert(ConfigId::from_index(i), m);
        }
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.get(ConfigId::from_index(42)), Some(m));
        assert_eq!(cache.get(ConfigId::from_index(1000)), None);
        // Idempotent: a second insert neither bumps the count nor clobbers.
        cache.insert(
            ConfigId::from_index(42),
            Measurement {
                runtime_ms: 9.0,
                cost_ms: 9.0,
            },
        );
        assert_eq!(cache.len(), 100);
        assert_eq!(cache.get(ConfigId::from_index(42)), Some(m));
    }

    #[test]
    fn sharded_cache_is_safe_under_concurrent_inserts() {
        let cache = ShardedEvalCache::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..256 {
                        let id = ConfigId::from_index(i);
                        cache.insert(
                            id,
                            Measurement {
                                runtime_ms: i as f64,
                                cost_ms: t as f64, // losers must not clobber
                            },
                        );
                        assert_eq!(cache.get(id).unwrap().runtime_ms, i as f64);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 256);
    }

    #[test]
    fn metrics_ratios() {
        let m = EvalMetrics {
            batches: 4,
            proposed: 100,
            measured: 60,
            cache_hits: 25,
            deduped: 15,
            threads: 4,
            fanout_batches: 2,
            fanout_thread_slots: 6,
            ..Default::default()
        };
        assert!((m.cache_hit_ratio() - 0.40).abs() < 1e-12);
        assert!((m.dedup_ratio() - 0.15).abs() < 1e-12);
        assert!((m.fanout_utilization() - 0.75).abs() < 1e-12);
        assert!(EvalMetrics::default().cache_hit_ratio() == 0.0);
        assert!(m.summary_line().contains("4 batches"));
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(EvalOutcome::Measured(2.0).runtime(), Some(2.0));
        assert_eq!(EvalOutcome::Cached(3.0).runtime(), Some(3.0));
        assert_eq!(EvalOutcome::Rejected.runtime(), None);
        assert_eq!(EvalOutcome::OutOfBudget.runtime(), None);
        assert!(EvalOutcome::OutOfBudget.is_out_of_budget());
        assert!(out_of_budget(&[
            EvalOutcome::Measured(1.0),
            EvalOutcome::OutOfBudget
        ]));
        assert!(!out_of_budget(&[EvalOutcome::Rejected]));
    }
}
