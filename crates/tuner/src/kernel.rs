//! Simulated kernel performance models.
//!
//! The paper's end-to-end experiments (Section 5.4, Figures 6–7) tune real
//! GPU kernels on an NVIDIA A100. This reproduction has no GPU, so kernel
//! execution is replaced by deterministic synthetic performance models: a
//! configuration's "runtime" is a smooth multimodal function of its
//! normalized parameter values plus deterministic configuration-specific
//! jitter. What matters for the experiment — that different configurations
//! have different, reproducible performance, and that evaluating one costs
//! simulated wall-clock time — is preserved.
//!
//! Models plug into the batched evaluation pipeline through
//! [`crate::eval::ModelBackend`], the first [`crate::eval::EvalBackend`]
//! implementation; the `Send + Sync` bound is what lets the engine share a
//! model across its fan-out worker threads.

use at_csp::Value;
use at_searchspace::SearchSpace;

/// A model that maps a configuration to a simulated kernel runtime.
pub trait PerformanceModel: Send + Sync {
    /// Simulated runtime in milliseconds of one kernel execution for the
    /// configuration (values in parameter declaration order).
    fn runtime_ms(&self, config: &[Value]) -> f64;

    /// Simulated benchmarking overhead per configuration in milliseconds
    /// (compilation, data transfers, framework overhead). Defaults to 50 ms.
    fn overhead_ms(&self, _config: &[Value]) -> f64 {
        50.0
    }

    /// Number of kernel repetitions per measurement (Kernel Tuner defaults to
    /// several to reduce noise). Defaults to 7.
    fn iterations(&self) -> u32 {
        7
    }

    /// Total simulated cost of benchmarking one configuration, in milliseconds.
    fn measurement_cost_ms(&self, config: &[Value]) -> f64 {
        self.overhead_ms(config) + self.runtime_ms(config) * self.iterations() as f64
    }
}

/// A deterministic synthetic kernel model.
///
/// The runtime surface is built from the configuration's normalized position
/// in each parameter's value list: a sum of cosine ridges (creating multiple
/// local optima), a mild interaction term between neighbouring parameters,
/// and a per-configuration deterministic jitter derived from a hash of the
/// values, scaled by `noise`.
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    /// Baseline runtime in milliseconds for the best possible configuration.
    pub base_ms: f64,
    /// Amplitude of the performance variation relative to `base_ms`.
    pub amplitude: f64,
    /// Relative magnitude of deterministic per-configuration jitter.
    pub noise: f64,
    /// Seed mixed into the jitter hash.
    pub seed: u64,
    /// Per-parameter normalization: the number of values of each parameter.
    param_sizes: Vec<usize>,
}

impl SyntheticKernel {
    /// Create a model for a resolved search space.
    pub fn for_space(space: &SearchSpace, seed: u64) -> Self {
        SyntheticKernel {
            base_ms: 2.0,
            amplitude: 8.0,
            noise: 0.05,
            seed,
            param_sizes: space.params().iter().map(|p| p.len().max(1)).collect(),
        }
    }

    /// Create a model with explicit parameters.
    pub fn new(
        base_ms: f64,
        amplitude: f64,
        noise: f64,
        seed: u64,
        param_sizes: Vec<usize>,
    ) -> Self {
        SyntheticKernel {
            base_ms,
            amplitude,
            noise,
            seed,
            param_sizes,
        }
    }

    fn normalized(&self, config: &[Value]) -> Vec<f64> {
        config
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let size = (*self.param_sizes.get(i).unwrap_or(&1) as f64).max(2.0);
                match v.as_f64() {
                    // Positive numeric values map through log2 so that the
                    // power-of-two domains common in auto-tuning spread evenly.
                    Some(f) if f > 0.0 => f.log2().rem_euclid(size) / size,
                    Some(_) => 0.5,
                    // Non-numeric values get a stable pseudo-position.
                    None => (hash_value(v, self.seed) % 1000) as f64 / 1000.0,
                }
            })
            .collect()
    }

    fn jitter(&self, config: &[Value]) -> f64 {
        let mut h = self.seed ^ 0x9E37_79B9_7F4A_7C15;
        for v in config {
            h = h
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(hash_value(v, self.seed));
        }
        // map to [-1, 1]
        ((h % 20001) as f64 / 10000.0) - 1.0
    }
}

fn hash_value(v: &Value, seed: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut hasher);
    v.hash(&mut hasher);
    hasher.finish()
}

impl PerformanceModel for SyntheticKernel {
    fn runtime_ms(&self, config: &[Value]) -> f64 {
        let coords = self.normalized(config);
        let n = coords.len().max(1) as f64;
        // Multimodal ridge landscape in [0, 1]^d.
        let mut penalty = 0.0;
        for (i, &x) in coords.iter().enumerate() {
            let phase = (i as f64 + 1.0) * 0.7;
            penalty += 0.5 * (1.0 - ((x * std::f64::consts::TAU * 1.5 + phase).cos())) / n;
            // distance to a per-dimension optimum
            let optimum = ((i as f64 * 0.37) + 0.21).fract();
            penalty += (x - optimum).abs() / n;
        }
        // interaction between neighbouring parameters
        for w in coords.windows(2) {
            penalty += 0.25 * (w[0] - w[1]).abs() / n;
        }
        let jitter = 1.0 + self.noise * self.jitter(config);
        (self.base_ms + self.amplitude * penalty) * jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;
    use at_searchspace::prelude::*;

    fn space() -> SearchSpace {
        let spec = SearchSpaceSpec::new("s")
            .with_param(TunableParameter::pow2("x", 6))
            .with_param(TunableParameter::pow2("y", 6))
            .with_expr("x * y >= 4");
        build_search_space(&spec, Method::Optimized).unwrap().0
    }

    #[test]
    fn deterministic() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 42);
        let cfg = s.iter().next().unwrap().to_vec();
        assert_eq!(k.runtime_ms(&cfg), k.runtime_ms(&cfg));
        assert_eq!(k.measurement_cost_ms(&cfg), k.measurement_cost_ms(&cfg));
    }

    #[test]
    fn different_configs_have_different_runtimes() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 42);
        let mut runtimes: Vec<f64> = s.iter_decoded().map(|c| k.runtime_ms(&c)).collect();
        runtimes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        runtimes.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        assert!(runtimes.len() > s.len() / 2, "landscape too flat");
    }

    #[test]
    fn runtimes_are_positive_and_bounded() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 7);
        for c in s.iter_decoded() {
            let t = k.runtime_ms(&c);
            assert!(t > 0.0);
            assert!(t < k.base_ms + k.amplitude * 3.0 + 5.0);
        }
    }

    #[test]
    fn measurement_cost_includes_overhead_and_iterations() {
        let s = space();
        let k = SyntheticKernel::for_space(&s, 1);
        let cfg = s.iter().next().unwrap().to_vec();
        let cost = k.measurement_cost_ms(&cfg);
        assert!(cost > k.runtime_ms(&cfg) * k.iterations() as f64);
    }

    #[test]
    fn seeds_change_the_landscape() {
        let s = space();
        let a = SyntheticKernel::for_space(&s, 1);
        let b = SyntheticKernel::for_space(&s, 2);
        let cfg = s.iter().next().unwrap().to_vec();
        assert_ne!(a.runtime_ms(&cfg), b.runtime_ms(&cfg));
    }

    #[test]
    fn string_values_are_supported() {
        let k = SyntheticKernel::new(1.0, 2.0, 0.0, 3, vec![2]);
        let t = k.runtime_ms(&[Value::str("on")]);
        assert!(t > 0.0);
        let _ = int_values([1]);
    }
}
