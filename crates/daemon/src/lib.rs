//! # at-daemon — the resident space-server (`atssd`)
//!
//! The paper's economics (Section 4.3.4) say a search space should be
//! solved **once** and then served from a representation close to its
//! internal form. The store crate delivers the passive half: any number
//! of processes can `mmap` the same `ATSS` cache entry and share one
//! resident copy of the arena. This crate is the active half: a
//! long-lived daemon that *owns* a [`SpaceStore`](at_store::SpaceStore),
//! dedupes concurrent builds, and hands clients validated paths to
//! attach to in O(header).
//!
//! ```text
//!   tuner 1 ──┐                          ┌─ mmap ──► one resident
//!   tuner 2 ──┼─ Unix socket ─► atssd ───┤            arena in the
//!   tuner N ──┘   (ATSD frames)  │       └─ mmap ──►  page cache
//!                                └─ SpaceStore (solve once, validate once)
//! ```
//!
//! ## The protocol
//!
//! [`proto`] defines the hand-rolled `ATSD` wire format: length-prefixed,
//! versioned, canonical frames over a Unix domain socket (no
//! dependencies; `std::os::unix::net`). Clients request a space by
//! [`SpecFingerprint`](at_store::SpecFingerprint) (`Get`) or by inline
//! spec source (`Resolve`); the daemon answers `Ready` with the validated
//! cache path, `NotFound`, or streams `Building` progress frames while a
//! build is in flight. See the [`proto`] module docs for the byte-level
//! frame layout.
//!
//! ## Single-flight builds
//!
//! Concurrent `Resolve`s of the same fingerprint trigger **exactly one**
//! solver run: the first request spawns a build worker, later requests
//! subscribe to the same build slot and stream progress to their clients
//! until the worker publishes the result ([`server`]). This is what the
//! meta-tuning fleet needs: many tuner processes hammering the same spec
//! cost one construction.
//!
//! ## The trust model
//!
//! A client attaches with `LoadOptions::mmap_trusted()` — zero-copy mmap,
//! persisted index adopted, **no arena CRC walk**. That is sound because
//! the daemon validated the exact file first: on first serve of an entry
//! it runs the strict read (every checksum, index adoption with sampled
//! verification), and entries it built itself were streamed through the
//! writer and published by atomic rename. From then on the entry is
//! *validated* and served O(header) (`peek_info` + the path). The entry
//! cannot be deleted out from under a client either: every reply pins the
//! entry ([`at_store::PinGuard`]) until the referencing connection
//! closes, and the daemon's own GC sweeps skip pinned entries. What the
//! trust model does **not** cover — by design — is an external writer
//! scribbling on the cache directory; the deployment contract is that the
//! daemon owns its cache directory, exactly like any database owns its
//! data files.
//!
//! ## Lifecycle
//!
//! [`server::Daemon::bind`] claims the socket path (refusing when a live
//! daemon answers on it, taking over a stale socket left by a crash),
//! writes a pidfile, and installs SIGTERM/SIGINT handlers ([`signal`])
//! that flip an atomic flag. [`server::Daemon::run`] polls that flag in
//! its accept loop; on shutdown it stops accepting, **drains** — every
//! connection finishes its request, every in-flight build completes and
//! notifies its waiters — and only then removes the socket and pidfile.
//!
//! ```no_run
//! use at_daemon::{Daemon, DaemonClient, DaemonConfig};
//! use at_searchspace::{Method, SearchSpaceSpec, TunableParameter};
//!
//! // Server process:
//! let daemon = Daemon::bind(DaemonConfig::new("/tmp/atssd.sock", "/tmp/atss-cache"))?;
//! let handle = daemon.handle();
//! std::thread::spawn(move || daemon.run());
//!
//! // Client process:
//! let spec = SearchSpaceSpec::new("demo")
//!     .with_param(TunableParameter::pow2("x", 5))
//!     .with_param(TunableParameter::pow2("y", 4))
//!     .with_expr("x * y <= 64");
//! let mut client = DaemonClient::connect("/tmp/atssd.sock")?;
//! let resolved = client.resolve_spec(&spec, Method::Optimized, false, |_| {})?;
//! let loaded = resolved.attach()?;          // O(header): mmap, trusted index
//! assert_eq!(loaded.space.len() as u64, resolved.rows);
//! handle.request_shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod error;
pub mod proto;
pub mod signal;

#[cfg(unix)]
pub mod client;
#[cfg(unix)]
pub mod server;

pub use error::DaemonError;
pub use proto::{Frame, ProtoError, ServeKind, WireError, MAX_PAYLOAD, PROTOCOL_VERSION};

#[cfg(unix)]
pub use client::{BuildProgress, DaemonClient, PongInfo, Resolved};
#[cfg(unix)]
pub use server::{Daemon, DaemonConfig, DaemonHandle, DaemonSummary};
