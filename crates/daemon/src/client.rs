//! Client side of the `ATSD` protocol: connect, resolve, attach.
//!
//! The client never validates arena bytes itself: it asks the daemon for
//! a validated path and mmaps it with `LoadOptions::mmap_trusted()` —
//! O(header) attach, no solve, no arena copy, no arena CRC walk. See the
//! [crate documentation](crate) for why that trust is sound.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use at_searchspace::{spec_to_json, Method, SearchSpaceSpec};
use at_store::{load_space_from_path, LoadOptions, LoadedSpace, SpecFingerprint, StoreError};

use crate::error::DaemonError;
use crate::proto::{read_frame, write_frame, Frame, ServeKind};

/// Progress of an in-flight build, as reported by `Building` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildProgress {
    /// The spec being built.
    pub fingerprint: SpecFingerprint,
    /// Milliseconds since the daemon started the build.
    pub elapsed_ms: u64,
    /// Requests currently waiting on the same build.
    pub waiters: u32,
}

/// A daemon's answer to a get/resolve request: where the validated entry
/// lives and how the request was satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolved {
    /// The entry's cache key.
    pub fingerprint: SpecFingerprint,
    /// Absolute path of the validated `ATSS` file (same filesystem as
    /// the daemon).
    pub path: PathBuf,
    /// Size of that file in bytes.
    pub file_bytes: u64,
    /// Configuration rows in the space.
    pub rows: u64,
    /// How the daemon satisfied the request.
    pub served: ServeKind,
    /// Build wall-clock microseconds (0 for warm/validated serves).
    pub build_us: u64,
}

impl Resolved {
    /// Attach to the resolved space: zero-copy mmap of the daemon's
    /// validated path with the persisted index trusted. This is the
    /// O(header) step the whole protocol exists for.
    pub fn attach(&self) -> Result<LoadedSpace, StoreError> {
        load_space_from_path(&self.path, LoadOptions::mmap_trusted())
    }
}

/// Reply to a [`DaemonClient::ping`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PongInfo {
    /// The daemon's process id.
    pub pid: u64,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
}

/// One connection to a running daemon.
pub struct DaemonClient {
    stream: UnixStream,
    socket: PathBuf,
}

impl DaemonClient {
    /// Connect to the daemon serving `socket`.
    pub fn connect(socket: impl AsRef<Path>) -> Result<DaemonClient, DaemonError> {
        let socket = socket.as_ref().to_path_buf();
        let stream = UnixStream::connect(&socket).map_err(|e| DaemonError::io(&socket, e))?;
        Ok(DaemonClient { stream, socket })
    }

    /// Like [`DaemonClient::connect`], but retry for up to `timeout`
    /// while the daemon is still coming up (its socket not bound yet).
    pub fn connect_with_retry(
        socket: impl AsRef<Path>,
        timeout: Duration,
    ) -> Result<DaemonClient, DaemonError> {
        let socket = socket.as_ref();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match DaemonClient::connect(socket) {
                Ok(client) => return Ok(client),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    fn send(&mut self, frame: &Frame) -> Result<(), DaemonError> {
        write_frame(&mut self.stream, frame).map_err(DaemonError::from)
    }

    fn recv(&mut self) -> Result<Frame, DaemonError> {
        match read_frame(&mut self.stream) {
            Ok(Some(frame)) => Ok(frame),
            Ok(None) => Err(DaemonError::io(
                &self.socket,
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ),
            )),
            Err(e) => Err(DaemonError::from(e)),
        }
    }

    fn unexpected(expected: &'static str, frame: Frame) -> DaemonError {
        match frame {
            Frame::ErrorReply { code, message } => DaemonError::Server { code, message },
            other => DaemonError::UnexpectedFrame {
                expected,
                got: format!("{other:?}"),
            },
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<PongInfo, DaemonError> {
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong { pid, uptime_ms } => Ok(PongInfo { pid, uptime_ms }),
            other => Err(Self::unexpected("Pong", other)),
        }
    }

    /// Fetch the daemon's one-line `atss.daemon-status.v1` envelope.
    pub fn status_json(&mut self) -> Result<String, DaemonError> {
        self.send(&Frame::Status)?;
        match self.recv()? {
            Frame::StatusReply { json } => Ok(json),
            other => Err(Self::unexpected("StatusReply", other)),
        }
    }

    /// Ask the daemon to drain in-flight builds and exit; returns once
    /// the daemon acknowledged with `Bye`.
    pub fn shutdown(&mut self) -> Result<(), DaemonError> {
        self.send(&Frame::Shutdown)?;
        match self.recv()? {
            Frame::Bye => Ok(()),
            other => Err(Self::unexpected("Bye", other)),
        }
    }

    /// Look up an entry by fingerprint; `Ok(None)` when the daemon has no
    /// usable entry (this call never builds — use
    /// [`DaemonClient::resolve_spec`] for get-or-build).
    pub fn get(&mut self, fingerprint: &SpecFingerprint) -> Result<Option<Resolved>, DaemonError> {
        self.send(&Frame::Get {
            fingerprint: *fingerprint,
        })?;
        match self.recv()? {
            Frame::Ready {
                fingerprint,
                path,
                file_bytes,
                rows,
                served,
                build_us,
            } => Ok(Some(Resolved {
                fingerprint,
                path: PathBuf::from(path),
                file_bytes,
                rows,
                served,
                build_us,
            })),
            Frame::NotFound { .. } => Ok(None),
            other => Err(Self::unexpected("Ready or NotFound", other)),
        }
    }

    /// Get-or-build: ship the spec to the daemon, wait through any build
    /// (calling `progress` on every `Building` frame), and return the
    /// validated entry. Fails with [`DaemonError::Unshippable`] when the
    /// spec has no JSON form (closure restrictions) — the caller should
    /// build locally in that case.
    pub fn resolve_spec(
        &mut self,
        spec: &SearchSpaceSpec,
        method: Method,
        prune: bool,
        mut progress: impl FnMut(BuildProgress),
    ) -> Result<Resolved, DaemonError> {
        let spec_json = spec_to_json(spec).map_err(|e| DaemonError::Unshippable(e.to_string()))?;
        self.send(&Frame::Resolve {
            spec_json,
            method: method.label().to_string(),
            prune,
        })?;
        loop {
            match self.recv()? {
                Frame::Building {
                    fingerprint,
                    elapsed_ms,
                    waiters,
                } => progress(BuildProgress {
                    fingerprint,
                    elapsed_ms,
                    waiters,
                }),
                Frame::Ready {
                    fingerprint,
                    path,
                    file_bytes,
                    rows,
                    served,
                    build_us,
                } => {
                    return Ok(Resolved {
                        fingerprint,
                        path: PathBuf::from(path),
                        file_bytes,
                        rows,
                        served,
                        build_us,
                    })
                }
                other => return Err(Self::unexpected("Ready or Building", other)),
            }
        }
    }
}
