//! The daemon crate's error type, shared by server and client.

use std::path::PathBuf;

use crate::proto::{ProtoError, WireError};

/// Everything that can go wrong binding, serving, or talking to a daemon.
#[derive(Debug)]
pub enum DaemonError {
    /// A filesystem or socket operation failed.
    Io {
        /// The path or socket involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The socket is owned by a live daemon (connect succeeded).
    AlreadyRunning {
        /// The contested socket path.
        socket: PathBuf,
    },
    /// The peer sent bytes that are not a valid frame.
    Proto(ProtoError),
    /// The peer answered with a frame the protocol does not allow here.
    UnexpectedFrame {
        /// What was expected.
        expected: &'static str,
        /// A short description of what arrived.
        got: String,
    },
    /// The daemon replied with an error frame.
    Server {
        /// The reply's status code (400 bad request, 422 uncacheable,
        /// 500 build failure).
        code: u16,
        /// The reply's message.
        message: String,
    },
    /// A `Get` found no usable entry for the fingerprint.
    NotFound,
    /// The store layer failed (opening the cache, building, loading).
    Store(at_store::StoreError),
    /// The request cannot be shipped to a daemon (e.g. a spec with
    /// closure restrictions has no JSON form); the caller should build
    /// locally.
    Unshippable(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            DaemonError::AlreadyRunning { socket } => {
                write!(f, "a daemon is already serving {}", socket.display())
            }
            DaemonError::Proto(e) => write!(f, "protocol error: {e}"),
            DaemonError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected}, daemon sent {got}")
            }
            DaemonError::Server { code, message } => {
                write!(f, "daemon error {code}: {message}")
            }
            DaemonError::NotFound => write!(f, "no cache entry for that fingerprint"),
            DaemonError::Store(e) => write!(f, "store error: {e}"),
            DaemonError::Unshippable(why) => {
                write!(f, "request cannot be served by a daemon: {why}")
            }
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io { source, .. } => Some(source),
            DaemonError::Proto(e) => Some(e),
            DaemonError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<at_store::StoreError> for DaemonError {
    fn from(e: at_store::StoreError) -> Self {
        DaemonError::Store(e)
    }
}

impl From<WireError> for DaemonError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(source) => DaemonError::Io {
                path: PathBuf::from("<socket>"),
                source,
            },
            WireError::Proto(p) => DaemonError::Proto(p),
        }
    }
}

impl DaemonError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> DaemonError {
        DaemonError::Io {
            path: path.into(),
            source,
        }
    }
}
