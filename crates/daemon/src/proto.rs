//! The `ATSD` wire protocol: length-prefixed, versioned, canonical frames.
//!
//! Everything the daemon and its clients exchange is a *frame*: a fixed
//! 12-byte header followed by a bounded payload. All integers are
//! little-endian; a *string* is a `u32` byte length followed by that many
//! UTF-8 bytes (the same convention as the `ATSS` file format).
//!
//! ```text
//! offset  size  field
//! 0       4     magic, the ASCII bytes "ATSD"
//! 4       2     protocol version, u16 (this build speaks exactly 1)
//! 6       1     frame type, u8 (see the table below)
//! 7       1     reserved, must be 0
//! 8       4     payload length L, u32 (at most 16 MiB)
//! 12      L     payload, per frame type
//! ```
//!
//! | type | frame        | payload |
//! |------|--------------|---------|
//! | 0x01 | `Ping`       | empty |
//! | 0x02 | `Get`        | fingerprint (16 bytes, `u128` LE) |
//! | 0x03 | `Resolve`    | spec JSON : string, method label : string, prune : bool (u8 0/1) |
//! | 0x04 | `Status`     | empty |
//! | 0x05 | `Shutdown`   | empty |
//! | 0x10 | `Ready`      | fingerprint, path : string, file bytes : u64, rows : u64, served : u8 (0 warm / 1 validated / 2 built / 3 coalesced), build µs : u64 |
//! | 0x11 | `Building`   | fingerprint, elapsed ms : u64, waiters : u32 |
//! | 0x12 | `NotFound`   | fingerprint |
//! | 0x13 | `ErrorReply` | code : u16, message : string |
//! | 0x14 | `StatusReply`| status envelope JSON : string |
//! | 0x15 | `Bye`        | empty |
//! | 0x16 | `Pong`       | pid : u64, uptime ms : u64 |
//!
//! The encoding is **canonical**: every frame has exactly one valid byte
//! representation (reserved byte zero, bools strictly 0/1, `served`
//! bounded, no trailing payload bytes), so a successful
//! [`Frame::decode`] re-[`encode`](Frame::encode)s byte-identically —
//! the round-trip oracle the `daemon_proto` fuzz target enforces. The
//! decoder reads untrusted bytes from the socket; it never panics, never
//! allocates more than the declared (bounded) payload length, and maps
//! every malformation to a typed [`ProtoError`].

use std::io::{Read, Write};

use at_store::SpecFingerprint;

/// The four magic bytes every frame starts with.
pub const MAGIC: [u8; 4] = *b"ATSD";
/// The protocol version this build speaks (writes and accepts).
pub const PROTOCOL_VERSION: u16 = 1;
/// Upper bound on a frame's payload length. Generous for spec JSON and
/// status envelopes, small enough that a hostile length prefix cannot
/// make the daemon allocate unbounded memory.
pub const MAX_PAYLOAD: u32 = 16 << 20;
/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 12;

/// How the daemon satisfied a request, carried in [`Frame::Ready`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// Entry already validated by this daemon earlier: O(header) serve.
    Warm = 0,
    /// Entry existed on disk and passed full validation just now.
    Validated = 1,
    /// Entry was constructed (solver ran) for this request.
    Built = 2,
    /// Another request was already building this spec; this one waited
    /// for that single flight and shares its result.
    Coalesced = 3,
}

impl ServeKind {
    /// A short label: `warm`, `validated`, `built` or `coalesced`.
    pub fn label(&self) -> &'static str {
        match self {
            ServeKind::Warm => "warm",
            ServeKind::Validated => "validated",
            ServeKind::Built => "built",
            ServeKind::Coalesced => "coalesced",
        }
    }

    fn from_u8(v: u8) -> Option<ServeKind> {
        match v {
            0 => Some(ServeKind::Warm),
            1 => Some(ServeKind::Validated),
            2 => Some(ServeKind::Built),
            3 => Some(ServeKind::Coalesced),
            _ => None,
        }
    }
}

/// One protocol frame; see the [module documentation](self) for the wire
/// layout of each variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Liveness probe.
    Ping,
    /// Look up an entry by fingerprint; never builds.
    Get {
        /// The cache key to look up.
        fingerprint: SpecFingerprint,
    },
    /// Get-or-build by inline spec source (single-flight on the server).
    Resolve {
        /// The spec, as `at_searchspace::spec_to_json` text.
        spec_json: String,
        /// Construction method label (`Method::from_label`).
        method: String,
        /// Whether to pre-prune domains before solving.
        prune: bool,
    },
    /// Request the `atss.daemon-status.v1` envelope.
    Status,
    /// Ask the daemon to drain in-flight builds and exit.
    Shutdown,
    /// Success reply: the validated cache path to mmap.
    Ready {
        /// The entry's cache key.
        fingerprint: SpecFingerprint,
        /// Absolute path of the validated `ATSS` file.
        path: String,
        /// Size of that file in bytes.
        file_bytes: u64,
        /// Configuration rows in the space.
        rows: u64,
        /// How the request was satisfied.
        served: ServeKind,
        /// Wall-clock microseconds of the build (0 unless `served` is
        /// `Built`/`Coalesced`).
        build_us: u64,
    },
    /// Progress frame streamed while a build is in flight.
    Building {
        /// The spec being built.
        fingerprint: SpecFingerprint,
        /// Milliseconds since the build started.
        elapsed_ms: u64,
        /// Requests currently waiting on this build.
        waiters: u32,
    },
    /// `Get` reply when no (usable) entry exists.
    NotFound {
        /// The fingerprint that was requested.
        fingerprint: SpecFingerprint,
    },
    /// Request-level failure (bad spec, uncacheable, build error, …).
    ErrorReply {
        /// HTTP-flavored status code (400 bad request, 422 uncacheable,
        /// 500 build failure).
        code: u16,
        /// Human-readable explanation.
        message: String,
    },
    /// `Status` reply: the one-line `atss.daemon-status.v1` JSON.
    StatusReply {
        /// The envelope text.
        json: String,
    },
    /// `Shutdown` acknowledgment; the daemon exits after sending it.
    Bye,
    /// `Ping` reply.
    Pong {
        /// The daemon's process id.
        pid: u64,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
    },
}

/// Every way a byte sequence can fail to be a frame. The decoder maps
/// *all* malformations here — it never panics on socket bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes are not `ATSD`.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header declares a protocol version this build does not speak.
    UnsupportedVersion {
        /// The version found.
        found: u16,
    },
    /// The header declares a frame type this build does not know.
    UnknownFrameType {
        /// The type byte found.
        found: u8,
    },
    /// The reserved header byte is nonzero.
    NonZeroReserved {
        /// The byte found.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared length.
        declared: u32,
    },
    /// The buffer or stream ends before the declared frame does.
    Truncated,
    /// The payload is longer than its frame type's fields consume.
    TrailingPayload {
        /// Unconsumed payload bytes.
        extra: usize,
    },
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A field holds an out-of-range value (non-0/1 bool, unknown
    /// `served` kind).
    BadValue(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic { found } => write!(f, "bad magic {found:?} (expected \"ATSD\")"),
            ProtoError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            ProtoError::UnknownFrameType { found } => write!(f, "unknown frame type {found:#04x}"),
            ProtoError::NonZeroReserved { found } => {
                write!(f, "reserved header byte is {found:#04x}, must be 0")
            }
            ProtoError::Oversized { declared } => {
                write!(
                    f,
                    "payload length {declared} exceeds the {MAX_PAYLOAD} bound"
                )
            }
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::TrailingPayload { extra } => {
                write!(f, "{extra} trailing payload byte(s) after the last field")
            }
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtoError::BadValue(what) => write!(f, "out-of-range field: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A failure while reading frames from a stream: either the transport
/// failed or the bytes were not a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying read/write failed (includes timeouts).
    Io(std::io::Error),
    /// The bytes read do not form a valid frame.
    Proto(ProtoError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Encoding

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_fp(out: &mut Vec<u8>, fp: &SpecFingerprint) {
    out.extend_from_slice(&fp.as_u128().to_le_bytes());
}

impl Frame {
    fn type_byte(&self) -> u8 {
        match self {
            Frame::Ping => 0x01,
            Frame::Get { .. } => 0x02,
            Frame::Resolve { .. } => 0x03,
            Frame::Status => 0x04,
            Frame::Shutdown => 0x05,
            Frame::Ready { .. } => 0x10,
            Frame::Building { .. } => 0x11,
            Frame::NotFound { .. } => 0x12,
            Frame::ErrorReply { .. } => 0x13,
            Frame::StatusReply { .. } => 0x14,
            Frame::Bye => 0x15,
            Frame::Pong { .. } => 0x16,
        }
    }

    /// Serialize this frame to its canonical byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 32);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.push(self.type_byte());
        out.push(0); // reserved
        out.extend_from_slice(&[0; 4]); // payload length, patched below
        match self {
            Frame::Ping | Frame::Status | Frame::Shutdown | Frame::Bye => {}
            Frame::Get { fingerprint } | Frame::NotFound { fingerprint } => {
                put_fp(&mut out, fingerprint);
            }
            Frame::Resolve {
                spec_json,
                method,
                prune,
            } => {
                put_str(&mut out, spec_json);
                put_str(&mut out, method);
                out.push(u8::from(*prune));
            }
            Frame::Ready {
                fingerprint,
                path,
                file_bytes,
                rows,
                served,
                build_us,
            } => {
                put_fp(&mut out, fingerprint);
                put_str(&mut out, path);
                out.extend_from_slice(&file_bytes.to_le_bytes());
                out.extend_from_slice(&rows.to_le_bytes());
                out.push(*served as u8);
                out.extend_from_slice(&build_us.to_le_bytes());
            }
            Frame::Building {
                fingerprint,
                elapsed_ms,
                waiters,
            } => {
                put_fp(&mut out, fingerprint);
                out.extend_from_slice(&elapsed_ms.to_le_bytes());
                out.extend_from_slice(&waiters.to_le_bytes());
            }
            Frame::ErrorReply { code, message } => {
                out.extend_from_slice(&code.to_le_bytes());
                put_str(&mut out, message);
            }
            Frame::StatusReply { json } => put_str(&mut out, json),
            Frame::Pong { pid, uptime_ms } => {
                out.extend_from_slice(&pid.to_le_bytes());
                out.extend_from_slice(&uptime_ms.to_le_bytes());
            }
        }
        let payload_len = (out.len() - HEADER_LEN) as u32;
        out[8..12].copy_from_slice(&payload_len.to_le_bytes());
        out
    }

    /// Decode one frame from the front of `buf`. Returns the frame and
    /// the number of bytes consumed (`HEADER_LEN` + payload length);
    /// bytes past the frame are left for the caller. Never panics.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), ProtoError> {
        if buf.len() < HEADER_LEN {
            return Err(ProtoError::Truncated);
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&buf[0..4]);
        if magic != MAGIC {
            return Err(ProtoError::BadMagic { found: magic });
        }
        let version = u16::from_le_bytes([buf[4], buf[5]]);
        if version != PROTOCOL_VERSION {
            return Err(ProtoError::UnsupportedVersion { found: version });
        }
        let frame_type = buf[6];
        if buf[7] != 0 {
            return Err(ProtoError::NonZeroReserved { found: buf[7] });
        }
        let declared = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
        if declared > MAX_PAYLOAD {
            return Err(ProtoError::Oversized { declared });
        }
        let payload_len = declared as usize;
        if buf.len() < HEADER_LEN + payload_len {
            return Err(ProtoError::Truncated);
        }
        let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
        let mut cur = PayloadCursor { rest: payload };
        let frame = match frame_type {
            0x01 => Frame::Ping,
            0x02 => Frame::Get {
                fingerprint: cur.fingerprint()?,
            },
            0x03 => Frame::Resolve {
                spec_json: cur.string()?,
                method: cur.string()?,
                prune: cur.boolean()?,
            },
            0x04 => Frame::Status,
            0x05 => Frame::Shutdown,
            0x10 => Frame::Ready {
                fingerprint: cur.fingerprint()?,
                path: cur.string()?,
                file_bytes: cur.u64()?,
                rows: cur.u64()?,
                served: ServeKind::from_u8(cur.u8()?).ok_or(ProtoError::BadValue("served kind"))?,
                build_us: cur.u64()?,
            },
            0x11 => Frame::Building {
                fingerprint: cur.fingerprint()?,
                elapsed_ms: cur.u64()?,
                waiters: cur.u32()?,
            },
            0x12 => Frame::NotFound {
                fingerprint: cur.fingerprint()?,
            },
            0x13 => Frame::ErrorReply {
                code: cur.u16()?,
                message: cur.string()?,
            },
            0x14 => Frame::StatusReply {
                json: cur.string()?,
            },
            0x15 => Frame::Bye,
            0x16 => Frame::Pong {
                pid: cur.u64()?,
                uptime_ms: cur.u64()?,
            },
            other => return Err(ProtoError::UnknownFrameType { found: other }),
        };
        if !cur.rest.is_empty() {
            return Err(ProtoError::TrailingPayload {
                extra: cur.rest.len(),
            });
        }
        Ok((frame, HEADER_LEN + payload_len))
    }
}

/// Bounds-checked field reader over one frame's payload.
struct PayloadCursor<'a> {
    rest: &'a [u8],
}

impl PayloadCursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ProtoError> {
        if self.rest.len() < n {
            return Err(ProtoError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn boolean(&mut self) -> Result<bool, ProtoError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtoError::BadValue("bool")),
        }
    }

    fn fingerprint(&mut self) -> Result<SpecFingerprint, ProtoError> {
        let b = self.take(16)?;
        Ok(SpecFingerprint::from_u128(u128::from_le_bytes(
            b.try_into().expect("16 bytes"),
        )))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }
}

// ---------------------------------------------------------------------------
// Stream framing

/// Read one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between frames); EOF *inside* a frame
/// is [`ProtoError::Truncated`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Proto(ProtoError::Truncated)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // Validate the header before trusting the length prefix: decode on the
    // bare header surfaces magic/version/type/reserved/bound errors (it can
    // only say `Truncated` for a frame that actually has a payload).
    let declared = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    match Frame::decode(&header) {
        Ok((frame, HEADER_LEN)) => return Ok(Some(frame)),
        Ok(_) => unreachable!("decode of 12 bytes cannot consume more"),
        Err(ProtoError::Truncated) if declared <= MAX_PAYLOAD => {}
        Err(e) => return Err(WireError::Proto(e)),
    }
    let mut buf = Vec::with_capacity(HEADER_LEN + declared as usize);
    buf.extend_from_slice(&header);
    buf.resize(HEADER_LEN + declared as usize, 0);
    r.read_exact(&mut buf[HEADER_LEN..]).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Proto(ProtoError::Truncated)
        } else {
            WireError::Io(e)
        }
    })?;
    match Frame::decode(&buf) {
        Ok((frame, _)) => Ok(Some(frame)),
        Err(e) => Err(WireError::Proto(e)),
    }
}

/// Write one frame to a stream.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), WireError> {
    w.write_all(&frame.encode()).map_err(WireError::Io)?;
    w.flush().map_err(WireError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> SpecFingerprint {
        SpecFingerprint::from_u128(n)
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Ping,
            Frame::Get {
                fingerprint: fp(0xDEAD_BEEF),
            },
            Frame::Resolve {
                spec_json: "{\"name\":\"x\"}".into(),
                method: "optimized".into(),
                prune: true,
            },
            Frame::Status,
            Frame::Shutdown,
            Frame::Ready {
                fingerprint: fp(u128::MAX),
                path: "/tmp/cache/abc.atss".into(),
                file_bytes: 4096,
                rows: 1234,
                served: ServeKind::Warm,
                build_us: 0,
            },
            Frame::Building {
                fingerprint: fp(7),
                elapsed_ms: 1500,
                waiters: 3,
            },
            Frame::NotFound { fingerprint: fp(0) },
            Frame::ErrorReply {
                code: 422,
                message: "uncacheable: closure restriction".into(),
            },
            Frame::StatusReply {
                json: "{\"schema\":\"atss.daemon-status.v1\"}".into(),
            },
            Frame::Bye,
            Frame::Pong {
                pid: 4242,
                uptime_ms: 60_000,
            },
        ]
    }

    #[test]
    fn every_frame_round_trips_canonically() {
        for frame in sample_frames() {
            let bytes = frame.encode();
            let (decoded, consumed) = Frame::decode(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded.encode(), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn decode_leaves_following_frames_in_the_buffer() {
        let mut buf = Frame::Ping.encode();
        let second = Frame::Status.encode();
        buf.extend_from_slice(&second);
        let (first, consumed) = Frame::decode(&buf).unwrap();
        assert_eq!(first, Frame::Ping);
        let (next, _) = Frame::decode(&buf[consumed..]).unwrap();
        assert_eq!(next, Frame::Status);
    }

    #[test]
    fn header_malformations_are_typed_errors() {
        let good = Frame::Ping.encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::BadMagic { .. })
        ));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::UnsupportedVersion { found: 9 })
        ));

        let mut bad = good.clone();
        bad[6] = 0x7F;
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::UnknownFrameType { found: 0x7F })
        ));

        let mut bad = good.clone();
        bad[7] = 1;
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::NonZeroReserved { found: 1 })
        ));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            Frame::decode(&bad),
            Err(ProtoError::Oversized { .. })
        ));

        assert_eq!(Frame::decode(&good[..5]), Err(ProtoError::Truncated));
        assert_eq!(Frame::decode(b""), Err(ProtoError::Truncated));
    }

    #[test]
    fn payload_malformations_are_typed_errors() {
        // Trailing byte after Ping's (empty) field list.
        let mut bad = Frame::Ping.encode();
        bad.extend_from_slice(&[0]);
        bad[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            Frame::decode(&bad),
            Err(ProtoError::TrailingPayload { extra: 1 })
        );

        // Bool that is neither 0 nor 1.
        let mut bad = Frame::Resolve {
            spec_json: "{}".into(),
            method: "optimized".into(),
            prune: false,
        }
        .encode();
        let last = bad.len() - 1;
        bad[last] = 2;
        assert_eq!(Frame::decode(&bad), Err(ProtoError::BadValue("bool")));

        // Served kind out of range.
        let frame = Frame::Ready {
            fingerprint: fp(1),
            path: "p".into(),
            file_bytes: 0,
            rows: 0,
            served: ServeKind::Built,
            build_us: 0,
        };
        let mut bad = frame.encode();
        // served byte sits 8 bytes before the end (build_us is last).
        let at = bad.len() - 9;
        bad[at] = 9;
        assert_eq!(
            Frame::decode(&bad),
            Err(ProtoError::BadValue("served kind"))
        );

        // String length prefix pointing past the payload.
        let mut bad = Frame::StatusReply { json: "{}".into() }.encode();
        bad[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Frame::decode(&bad), Err(ProtoError::Truncated));

        // Invalid UTF-8 in a string field.
        let mut bad = Frame::StatusReply { json: "ab".into() }.encode();
        bad[HEADER_LEN + 4] = 0xFF;
        assert_eq!(Frame::decode(&bad), Err(ProtoError::BadUtf8));
    }

    #[test]
    fn stream_reader_frames_and_reports_clean_eof() {
        let mut bytes = Vec::new();
        for frame in sample_frames() {
            bytes.extend_from_slice(&frame.encode());
        }
        let mut cursor = std::io::Cursor::new(bytes);
        let mut seen = Vec::new();
        while let Some(frame) = read_frame(&mut cursor).unwrap() {
            seen.push(frame);
        }
        assert_eq!(seen, sample_frames());

        // EOF inside a frame is Truncated, not a clean end.
        let partial = &Frame::Status.encode()[..7];
        let mut cursor = std::io::Cursor::new(partial.to_vec());
        assert!(matches!(
            read_frame(&mut cursor),
            Err(WireError::Proto(ProtoError::Truncated))
        ));
    }
}
