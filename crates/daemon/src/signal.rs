//! SIGTERM/SIGINT handling for the daemon: a signal flips one global
//! `AtomicBool` the accept loop polls, nothing more.
//!
//! This is the crate's only unsafe code (registering a handler with
//! `signal(2)` is FFI against the already-linked C library, the same
//! pattern as the store's hand-rolled `mmap` wrapper). The handler body
//! is a single relaxed-to-release atomic store — async-signal-safe by
//! construction: no allocation, no locks, no I/O.
//!
//! The flag is process-global (signals are), so it is a *request* every
//! running [`Daemon`](crate::server::Daemon) observes, alongside its own
//! per-daemon shutdown flag. [`request_shutdown`] sets the same flag from
//! ordinary code; [`clear`] resets it (a freshly bound daemon starts with
//! a clean slate so a flag left over from a previous run in the same
//! process cannot stop it instantly).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal (or [`request_shutdown`]) has been seen
/// since the last [`clear`].
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Set the shutdown flag from ordinary (non-signal) code.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Reset the shutdown flag.
pub fn clear() {
    SHUTDOWN.store(false, Ordering::Release);
}

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;

    /// The C handler type `signal(2)` takes.
    pub type Handler = extern "C" fn(i32);

    extern "C" {
        /// `signal(2)` — returns the previous handler (ignored here).
        pub fn signal(signum: i32, handler: Handler) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Only an atomic store: the one operation unconditionally
    // async-signal-safe.
    SHUTDOWN.store(true, Ordering::Release);
}

/// Install the SIGTERM/SIGINT handler. Idempotent; later installs simply
/// re-register the same handler. On non-Unix targets this is a no-op (the
/// daemon itself is Unix-only, but the crate must still compile).
pub fn install() {
    #[cfg(unix)]
    {
        // SAFETY: `signal` is the C library's own registration call with
        // the signature declared above; `on_signal` is an `extern "C"`
        // function whose body is a single atomic store, making it valid
        // as an async signal handler. No Rust state is accessed from the
        // handler beyond the static atomic.
        unsafe {
            let _ = sys::signal(sys::SIGTERM, on_signal);
            let _ = sys::signal(sys::SIGINT, on_signal);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn a_real_sigterm_sets_the_flag_and_does_not_kill_the_process() {
        install();
        clear();
        assert!(!shutdown_requested());
        // SAFETY: `raise` delivers SIGTERM to this process; the handler
        // installed above intercepts it (an atomic store), so the process
        // survives and we can observe the flag.
        let rc = unsafe { raise(sys::SIGTERM) };
        assert_eq!(rc, 0);
        assert!(shutdown_requested());
        clear();
    }
}
