//! The resident space-server: accept loop, single-flight builds, pinning,
//! lifecycle hygiene.
//!
//! One [`Daemon`] owns a [`SpaceStore`] and a Unix listener. Every
//! connection runs on its own thread; every *build* runs on its own
//! worker thread keyed by [`SpecFingerprint`] in a single-flight table,
//! so N concurrent requests for the same cold spec cost exactly one
//! solver run — the first request spawns the worker, the rest subscribe
//! to its build slot and stream [`Frame::Building`] progress to their
//! clients while they wait. Completed entries are remembered in a
//! *validated* set: the daemon fully validates a file once (checksums,
//! index adoption) and afterwards serves it O(header) — a `peek_info`
//! plus the path, which the client mmaps with
//! `LoadOptions::mmap_trusted()`.
//!
//! Entries are pinned ([`SpaceStore::pin`]) from the moment a reply
//! references them until every connection holding that reply closes, so
//! the between-builds GC sweep ([`DaemonConfig::gc`]) can never delete a
//! file a client was just promised.
//!
//! Shutdown: SIGTERM/SIGINT (via [`crate::signal`]), a `Shutdown` frame,
//! or [`DaemonHandle::request_shutdown`] all flip flags the accept loop
//! polls (the listener is non-blocking). The loop then stops accepting,
//! joins every connection and build worker — draining in-flight builds —
//! and removes its socket and pidfile.

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use at_obs::json::Json;
use at_searchspace::{spec_from_json, BuildOptions, Method};
use at_store::{
    peek_info, read_space_from_path, CacheStatus, GcOptions, PinGuard, SpaceStore, SpecFingerprint,
};

use crate::error::DaemonError;
use crate::proto::{read_frame, write_frame, Frame, ServeKind, WireError, PROTOCOL_VERSION};
use crate::signal;

/// How long the non-blocking accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(25);
/// Read timeout on connection streams, so idle connections observe
/// shutdown promptly.
const READ_POLL: Duration = Duration::from_millis(150);
/// Cadence of `Building` progress frames streamed to waiting clients.
const PROGRESS_TICK: Duration = Duration::from_millis(100);

/// Everything a [`Daemon`] needs to bind.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The Unix socket path to serve on.
    pub socket: PathBuf,
    /// The cache directory the daemon owns.
    pub cache_dir: PathBuf,
    /// Pidfile path; defaults to `<socket>.pid`.
    pub pidfile: Option<PathBuf>,
    /// GC bounds applied after every build (pinned entries are skipped);
    /// `None` disables daemon-side sweeps.
    pub gc: Option<GcOptions>,
}

impl DaemonConfig {
    /// A config with default pidfile and no GC bounds.
    pub fn new(socket: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            cache_dir: cache_dir.into(),
            pidfile: None,
            gc: None,
        }
    }

    fn pidfile_path(&self) -> PathBuf {
        self.pidfile.clone().unwrap_or_else(|| {
            let mut os = self.socket.as_os_str().to_os_string();
            os.push(".pid");
            PathBuf::from(os)
        })
    }
}

/// What one daemon lifetime did, returned by [`Daemon::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonSummary {
    /// Wall-clock service time.
    pub uptime: Duration,
    /// Connections accepted.
    pub connections: u64,
    /// Frames dispatched.
    pub requests: u64,
    /// Solver runs performed (cache misses).
    pub builds: u64,
    /// Requests served O(header) from the validated set.
    pub served_warm: u64,
    /// Requests that joined another request's in-flight build.
    pub coalesced: u64,
    /// Connections dropped for sending bytes that were not frames.
    pub proto_errors: u64,
}

/// One in-flight build, shared by its worker and every waiting request.
struct BuildSlot {
    fingerprint: SpecFingerprint,
    started: Instant,
    waiters: AtomicU32,
    state: Mutex<SlotState>,
    done: Condvar,
}

enum SlotState {
    Running,
    Done(Result<Served, String>),
}

/// A resolved entry, ready to describe in a `Ready` frame. The pin guard
/// travels with it (shared), so the entry stays gc-safe for as long as
/// any reply or connection still references it.
#[derive(Clone)]
struct Served {
    fingerprint: SpecFingerprint,
    path: PathBuf,
    file_bytes: u64,
    rows: u64,
    kind: ServeKind,
    build_us: u64,
    pin: Arc<PinGuard>,
}

struct ServerState {
    store: SpaceStore,
    socket: PathBuf,
    cache_dir: PathBuf,
    gc: Option<GcOptions>,
    started: Instant,
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    builds: AtomicU64,
    served_warm: AtomicU64,
    coalesced: AtomicU64,
    proto_errors: AtomicU64,
    validated: Mutex<HashSet<SpecFingerprint>>,
    inflight: Mutex<HashMap<SpecFingerprint, Arc<BuildSlot>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire) || signal::shutdown_requested()
    }

    fn is_validated(&self, fp: &SpecFingerprint) -> bool {
        self.validated.lock().expect("validated set").contains(fp)
    }

    fn mark_validated(&self, fp: SpecFingerprint) {
        self.validated.lock().expect("validated set").insert(fp);
    }

    fn unmark_validated(&self, fp: &SpecFingerprint) {
        self.validated.lock().expect("validated set").remove(fp);
    }
}

/// A cloneable remote control for a running daemon (for tests and
/// embedders; external processes use the `Shutdown` frame or SIGTERM).
#[derive(Clone)]
pub struct DaemonHandle {
    state: Arc<ServerState>,
}

impl DaemonHandle {
    /// Ask the daemon to stop accepting, drain, and exit.
    pub fn request_shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Release);
    }

    /// A clone of the daemon's store (shares metrics and pins), e.g. to
    /// assert single-flight build counts in tests.
    pub fn store(&self) -> SpaceStore {
        self.state.store.clone()
    }

    /// The daemon's one-line `atss.daemon-status.v1` envelope.
    pub fn status_json(&self) -> String {
        status_json(&self.state)
    }
}

/// A bound, not-yet-running space-server. See the [module
/// documentation](self).
pub struct Daemon {
    listener: UnixListener,
    state: Arc<ServerState>,
    pidfile: PathBuf,
}

impl Daemon {
    /// Bind the socket, claim the pidfile, and install signal handlers.
    ///
    /// Socket-path ownership: if the path exists and a daemon answers on
    /// it, this fails with [`DaemonError::AlreadyRunning`]; if nothing
    /// answers (a previous daemon died without cleanup), the stale socket
    /// is taken over.
    pub fn bind(config: DaemonConfig) -> Result<Daemon, DaemonError> {
        if config.socket.exists() {
            match UnixStream::connect(&config.socket) {
                Ok(_) => {
                    return Err(DaemonError::AlreadyRunning {
                        socket: config.socket.clone(),
                    })
                }
                Err(_) => {
                    // Stale socket: no listener behind it. Take it over.
                    std::fs::remove_file(&config.socket)
                        .map_err(|e| DaemonError::io(&config.socket, e))?;
                }
            }
        }
        let store = SpaceStore::new(&config.cache_dir)?;
        let listener =
            UnixListener::bind(&config.socket).map_err(|e| DaemonError::io(&config.socket, e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DaemonError::io(&config.socket, e))?;
        let pidfile = config.pidfile_path();
        let mut f = std::fs::File::create(&pidfile).map_err(|e| DaemonError::io(&pidfile, e))?;
        writeln!(f, "{}", std::process::id()).map_err(|e| DaemonError::io(&pidfile, e))?;
        signal::install();
        signal::clear();
        Ok(Daemon {
            listener,
            state: Arc::new(ServerState {
                store,
                socket: config.socket,
                cache_dir: config.cache_dir,
                gc: config.gc,
                started: Instant::now(),
                shutdown: AtomicBool::new(false),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                builds: AtomicU64::new(0),
                served_warm: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                proto_errors: AtomicU64::new(0),
                validated: Mutex::new(HashSet::new()),
                inflight: Mutex::new(HashMap::new()),
                workers: Mutex::new(Vec::new()),
            }),
            pidfile,
        })
    }

    /// The socket this daemon serves on.
    pub fn socket(&self) -> &Path {
        &self.state.socket
    }

    /// A remote control for this daemon (usable from other threads while
    /// [`Daemon::run`] blocks).
    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serve until shutdown is requested, then drain and clean up.
    /// Blocks the calling thread for the daemon's whole life.
    pub fn run(self) -> Result<DaemonSummary, DaemonError> {
        let state = self.state;
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();
        while !state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let id = state.connections.fetch_add(1, Ordering::Relaxed);
                    at_obs::event("accept", "daemon", &[("conn", id)]);
                    let state = Arc::clone(&state);
                    conn_threads.push(std::thread::spawn(move || handle_conn(state, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    conn_threads.retain(|h| !h.is_finished());
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Drain: stop accepting, finish every connection and in-flight
        // build, only then remove the socket and pidfile.
        drop(self.listener);
        for h in conn_threads {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *state.workers.lock().expect("worker list"));
        for h in workers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&state.socket);
        let _ = std::fs::remove_file(&self.pidfile);
        Ok(DaemonSummary {
            uptime: state.started.elapsed(),
            connections: state.connections.load(Ordering::Relaxed),
            requests: state.requests.load(Ordering::Relaxed),
            builds: state.builds.load(Ordering::Relaxed),
            served_warm: state.served_warm.load(Ordering::Relaxed),
            coalesced: state.coalesced.load(Ordering::Relaxed),
            proto_errors: state.proto_errors.load(Ordering::Relaxed),
        })
    }
}

/// What a dispatched frame tells the connection loop to do next.
enum Flow {
    Continue,
    Close,
}

fn handle_conn(state: Arc<ServerState>, mut stream: UnixStream) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // Pins held on behalf of this connection: every entry referenced by a
    // reply stays gc-safe until the connection closes.
    let mut pins: Vec<Arc<PinGuard>> = Vec::new();
    loop {
        match read_frame(&mut stream) {
            Ok(None) => break,
            Ok(Some(frame)) => {
                state.requests.fetch_add(1, Ordering::Relaxed);
                let span = at_obs::span("dispatch", "daemon");
                let flow = dispatch(&state, &mut stream, frame, &mut pins);
                drop(span);
                match flow {
                    Flow::Continue => {}
                    Flow::Close => break,
                }
            }
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutting_down() {
                    break;
                }
            }
            Err(WireError::Io(_)) => break,
            Err(WireError::Proto(e)) => {
                // Bad bytes: framing is lost, so report once and close.
                state.proto_errors.fetch_add(1, Ordering::Relaxed);
                let _ = reply(
                    &mut stream,
                    &Frame::ErrorReply {
                        code: 400,
                        message: e.to_string(),
                    },
                );
                break;
            }
        }
    }
}

/// Write one reply frame inside a `reply` span.
fn reply(stream: &mut UnixStream, frame: &Frame) -> Result<(), WireError> {
    let _span = at_obs::span("reply", "daemon");
    write_frame(stream, frame)
}

fn ready_frame(served: &Served) -> Frame {
    Frame::Ready {
        fingerprint: served.fingerprint,
        path: served.path.display().to_string(),
        file_bytes: served.file_bytes,
        rows: served.rows,
        served: served.kind,
        build_us: served.build_us,
    }
}

fn dispatch(
    state: &Arc<ServerState>,
    stream: &mut UnixStream,
    frame: Frame,
    pins: &mut Vec<Arc<PinGuard>>,
) -> Flow {
    match frame {
        Frame::Ping => {
            let pong = Frame::Pong {
                pid: std::process::id() as u64,
                uptime_ms: state.started.elapsed().as_millis() as u64,
            };
            if reply(stream, &pong).is_err() {
                return Flow::Close;
            }
            Flow::Continue
        }
        Frame::Status => {
            let frame = Frame::StatusReply {
                json: status_json(state),
            };
            if reply(stream, &frame).is_err() {
                return Flow::Close;
            }
            Flow::Continue
        }
        Frame::Shutdown => {
            let _ = reply(stream, &Frame::Bye);
            state.shutdown.store(true, Ordering::Release);
            Flow::Close
        }
        Frame::Get { fingerprint } => {
            match serve_existing(state, &fingerprint) {
                Some(served) => {
                    pins.push(Arc::clone(&served.pin));
                    if served.kind == ServeKind::Warm {
                        state.served_warm.fetch_add(1, Ordering::Relaxed);
                    }
                    if reply(stream, &ready_frame(&served)).is_err() {
                        return Flow::Close;
                    }
                }
                None => {
                    if reply(stream, &Frame::NotFound { fingerprint }).is_err() {
                        return Flow::Close;
                    }
                }
            }
            Flow::Continue
        }
        Frame::Resolve {
            spec_json,
            method,
            prune,
        } => match resolve(state, stream, &spec_json, &method, prune) {
            Ok(served) => {
                pins.push(Arc::clone(&served.pin));
                if served.kind == ServeKind::Warm {
                    state.served_warm.fetch_add(1, Ordering::Relaxed);
                }
                if served.kind == ServeKind::Coalesced {
                    state.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                if reply(stream, &ready_frame(&served)).is_err() {
                    return Flow::Close;
                }
                Flow::Continue
            }
            Err(ResolveError::ClientGone) => Flow::Close,
            Err(ResolveError::Reply { code, message }) => {
                if reply(stream, &Frame::ErrorReply { code, message }).is_err() {
                    return Flow::Close;
                }
                Flow::Continue
            }
        },
        // Response-only frames arriving as requests: a confused peer.
        Frame::Ready { .. }
        | Frame::Building { .. }
        | Frame::NotFound { .. }
        | Frame::ErrorReply { .. }
        | Frame::StatusReply { .. }
        | Frame::Bye
        | Frame::Pong { .. } => {
            let _ = reply(
                stream,
                &Frame::ErrorReply {
                    code: 400,
                    message: "response frame sent as a request".to_string(),
                },
            );
            Flow::Close
        }
    }
}

/// Serve an entry that already exists on disk, without ever building.
/// Validated entries are O(header): `peek_info` + the path. First touch
/// of an existing entry pays one full validation; a file that fails it is
/// treated as absent (the `Resolve` path repairs it by rebuild).
fn serve_existing(state: &Arc<ServerState>, fp: &SpecFingerprint) -> Option<Served> {
    let path = state.store.path_for(fp);
    if !path.exists() {
        state.unmark_validated(fp);
        return None;
    }
    if state.is_validated(fp) {
        match peek_info(&path) {
            Ok(info) => {
                return Some(Served {
                    fingerprint: *fp,
                    path,
                    file_bytes: info.file_bytes,
                    rows: info.num_rows as u64,
                    kind: ServeKind::Warm,
                    build_us: 0,
                    pin: Arc::new(state.store.pin(fp)),
                })
            }
            Err(_) => state.unmark_validated(fp),
        }
    }
    // Full validation: every checksum, index adoption with sampled
    // verification. This is the moment the daemon takes responsibility
    // for the bytes its clients will mmap without re-checking.
    match read_space_from_path(&path) {
        Ok((space, info)) => {
            state.mark_validated(*fp);
            Some(Served {
                fingerprint: *fp,
                path,
                file_bytes: info.file_bytes,
                rows: space.len() as u64,
                kind: ServeKind::Validated,
                build_us: 0,
                pin: Arc::new(state.store.pin(fp)),
            })
        }
        Err(_) => None,
    }
}

enum ResolveError {
    /// The waiting client's socket died; close the connection.
    ClientGone,
    /// Send this error frame.
    Reply { code: u16, message: String },
}

/// Get-or-build by inline spec: the single-flight path.
fn resolve(
    state: &Arc<ServerState>,
    stream: &mut UnixStream,
    spec_json: &str,
    method_label: &str,
    prune: bool,
) -> Result<Served, ResolveError> {
    let spec = spec_from_json(spec_json).map_err(|e| ResolveError::Reply {
        code: 400,
        message: format!("bad spec: {e}"),
    })?;
    let method = Method::from_label(method_label).ok_or_else(|| ResolveError::Reply {
        code: 400,
        message: format!("unknown method `{method_label}`"),
    })?;
    let fp = SpecFingerprint::compute(&spec, method.default_lowering()).map_err(|e| {
        ResolveError::Reply {
            code: 422,
            message: e.to_string(),
        }
    })?;

    // Fast path: validated entry on disk.
    if state.is_validated(&fp) {
        if let Some(served) = serve_existing(state, &fp) {
            return Ok(served);
        }
    }
    // Single-flight: first request for a fingerprint spawns the worker,
    // the rest subscribe to its slot.
    let (slot, creator) = {
        let mut inflight = state.inflight.lock().expect("inflight table");
        match inflight.get(&fp) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(BuildSlot {
                    fingerprint: fp,
                    started: Instant::now(),
                    waiters: AtomicU32::new(0),
                    state: Mutex::new(SlotState::Running),
                    done: Condvar::new(),
                });
                inflight.insert(fp, Arc::clone(&slot));
                spawn_build_worker(state, Arc::clone(&slot), spec.clone(), method, prune);
                (slot, true)
            }
        }
    };
    match wait_streaming(stream, &slot)? {
        Ok(mut served) => {
            if !creator {
                served.kind = ServeKind::Coalesced;
            }
            Ok(served)
        }
        Err(message) => Err(ResolveError::Reply { code: 500, message }),
    }
}

/// Block on a build slot, streaming `Building` frames to the client every
/// [`PROGRESS_TICK`] until the worker publishes a result.
fn wait_streaming(
    stream: &mut UnixStream,
    slot: &BuildSlot,
) -> Result<Result<Served, String>, ResolveError> {
    slot.waiters.fetch_add(1, Ordering::Relaxed);
    let result = loop {
        let guard = slot.state.lock().expect("slot state");
        if let SlotState::Done(result) = &*guard {
            break result.clone();
        }
        let (guard, _timeout) = slot
            .done
            .wait_timeout(guard, PROGRESS_TICK)
            .expect("slot state");
        if let SlotState::Done(result) = &*guard {
            break result.clone();
        }
        drop(guard);
        let progress = Frame::Building {
            fingerprint: slot.fingerprint,
            elapsed_ms: slot.started.elapsed().as_millis() as u64,
            waiters: slot.waiters.load(Ordering::Relaxed),
        };
        if write_frame(stream, &progress).is_err() {
            slot.waiters.fetch_sub(1, Ordering::Relaxed);
            return Err(ResolveError::ClientGone);
        }
    };
    slot.waiters.fetch_sub(1, Ordering::Relaxed);
    Ok(result)
}

/// Run one build on a dedicated worker thread: solve (or validate the
/// existing file), publish the result to the slot, retire the slot, then
/// apply the daemon's GC bounds (pinned entries skipped).
fn spawn_build_worker(
    state: &Arc<ServerState>,
    slot: Arc<BuildSlot>,
    spec: at_searchspace::SearchSpaceSpec,
    method: Method,
    prune: bool,
) {
    let state_for_worker = Arc::clone(state);
    let handle = std::thread::spawn(move || {
        let state = state_for_worker;
        let span = at_obs::span("build", "daemon");
        let options = BuildOptions {
            prune,
            ..BuildOptions::default()
        };
        let built = catch_unwind(AssertUnwindSafe(|| {
            state.store.get_or_build_with(&spec, method, options)
        }));
        let result = match built {
            Ok(Ok((space, out))) => {
                let fp = slot.fingerprint;
                state.mark_validated(fp);
                let kind = match out.status {
                    CacheStatus::Hit => ServeKind::Validated,
                    _ => {
                        state.builds.fetch_add(1, Ordering::Relaxed);
                        ServeKind::Built
                    }
                };
                Ok(Served {
                    fingerprint: fp,
                    path: out.path.unwrap_or_else(|| state.store.path_for(&fp)),
                    file_bytes: out.file_bytes,
                    rows: space.len() as u64,
                    kind,
                    build_us: out.duration.as_micros() as u64,
                    pin: Arc::new(state.store.pin(&fp)),
                })
            }
            Ok(Err(e)) => Err(format!("build failed: {e}")),
            Err(_) => Err("build panicked".to_string()),
        };
        drop(span.arg("rows", result.as_ref().map(|s| s.rows).unwrap_or(0)));
        {
            let mut guard = slot.state.lock().expect("slot state");
            *guard = SlotState::Done(result);
        }
        slot.done.notify_all();
        state
            .inflight
            .lock()
            .expect("inflight table")
            .remove(&slot.fingerprint);
        // Between-builds GC: bound the cache now that it just grew.
        // Pinned entries (anything a live reply references, including the
        // one just published) are reported and skipped.
        if let Some(gc) = state.gc {
            let _ = state.store.gc_with(gc);
        }
    });
    state.workers.lock().expect("worker list").push(handle);
}

/// Assemble the one-line `atss.daemon-status.v1` envelope.
fn status_json(state: &ServerState) -> String {
    let metrics = state.store.metrics();
    let mut doc = Json::obj();
    doc.push("schema", Json::Str("atss.daemon-status.v1".to_string()));
    doc.push("protocol_version", Json::U64(PROTOCOL_VERSION as u64));
    doc.push("pid", Json::U64(std::process::id() as u64));
    doc.push("socket", Json::Str(state.socket.display().to_string()));
    doc.push(
        "cache_dir",
        Json::Str(state.cache_dir.display().to_string()),
    );
    doc.push(
        "uptime_ms",
        Json::U64(state.started.elapsed().as_millis() as u64),
    );
    doc.push(
        "connections",
        Json::U64(state.connections.load(Ordering::Relaxed)),
    );
    doc.push(
        "requests",
        Json::U64(state.requests.load(Ordering::Relaxed)),
    );
    doc.push("builds", Json::U64(state.builds.load(Ordering::Relaxed)));
    doc.push(
        "served_warm",
        Json::U64(state.served_warm.load(Ordering::Relaxed)),
    );
    doc.push(
        "coalesced",
        Json::U64(state.coalesced.load(Ordering::Relaxed)),
    );
    doc.push(
        "proto_errors",
        Json::U64(state.proto_errors.load(Ordering::Relaxed)),
    );
    doc.push(
        "validated",
        Json::U64(state.validated.lock().expect("validated set").len() as u64),
    );
    doc.push("pinned", Json::U64(state.store.pinned_count() as u64));

    let mut inflight = Vec::new();
    for slot in state.inflight.lock().expect("inflight table").values() {
        let mut entry = Json::obj();
        entry.push("fingerprint", Json::Str(slot.fingerprint.to_hex()));
        entry.push(
            "elapsed_ms",
            Json::U64(slot.started.elapsed().as_millis() as u64),
        );
        entry.push(
            "waiters",
            Json::U64(slot.waiters.load(Ordering::Relaxed) as u64),
        );
        inflight.push(entry);
    }
    doc.push("inflight", Json::Arr(inflight));

    let mut store = Json::obj();
    store.push("hits", Json::U64(metrics.hits()));
    store.push("misses", Json::U64(metrics.misses()));
    store.push("rebuilds", Json::U64(metrics.rebuilds()));
    store.push("uncacheable", Json::U64(metrics.uncacheable()));
    store.push("index_fallbacks", Json::U64(metrics.index_fallbacks()));
    store.push("gc_evictions", Json::U64(metrics.gc_evictions()));
    store.push("gc_pin_skips", Json::U64(metrics.gc_pin_skips()));
    store.push(
        "mean_load_us",
        match metrics.mean_load_time() {
            Some(d) => Json::F64(d.as_secs_f64() * 1_000_000.0),
            None => Json::Null,
        },
    );
    doc.push("store", store);

    let (entries, entry_bytes) = match state.store.entries() {
        Ok(list) => (list.len() as u64, list.iter().map(|e| e.bytes).sum()),
        Err(_) => (0, 0),
    };
    doc.push("entries", Json::U64(entries));
    doc.push("entry_bytes", Json::U64(entry_bytes));
    doc.to_string()
}
