//! Zero-interference properties of the observability layer.
//!
//! The contract `at_obs` documents — and the ISSUE's tentpole demands — is
//! that turning the recorder on never changes what the pipeline computes:
//! the recorder only reads the clock and writes its own buffers. Two
//! properties pin that down over random workloads, formats, seeds and
//! fan-out widths:
//!
//! 1. **Export byte-identity**: `construct` renders the bit-identical
//!    space with and without `--trace`/`--metrics` (the envelope is an
//!    appended line, never a mutation of the export itself).
//! 2. **Trajectory identity**: a `tune --json` run — every evaluation,
//!    the best configuration, the virtual clock, the work counters — is
//!    identical with and without the recorder.
//!
//! The recorder is process-global, so every case serializes on one lock;
//! the properties still cover the multi-threaded fan-out because the
//! traced run spawns its own eval workers.

use std::sync::Mutex;

use proptest::prelude::*;

use at_cli::args::{parse, ParsedArgs};
use at_cli::commands::{construct, tune};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn parsed(args: &[&str]) -> ParsedArgs {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn construct_exports_are_byte_identical_under_tracing(
        workload_idx in 0usize..2,
        format_idx in 0usize..3,
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let workload = ["dedispersion", "hotspot"][workload_idx];
        let format = ["csv", "count", "json"][format_idx];
        let trace = std::env::temp_dir()
            .join(format!("at-proptest-obs-{workload}-{format}.trace.json"));
        let plain = construct(&parsed(&[
            "construct", "--workload", workload, "--format", format,
        ]))
        .unwrap();
        let traced = construct(&parsed(&[
            "construct", "--workload", workload, "--format", format,
            "--trace", trace.to_str().unwrap(),
        ]))
        .unwrap();
        prop_assert_eq!(plain, traced);
        // The trace itself was written and is non-trivial.
        prop_assert!(std::fs::metadata(&trace).unwrap().len() > 2);
    }

    #[test]
    fn tune_trajectories_are_identical_under_metrics(
        seed in 0u64..500,
        threads in 1usize..5,
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let seed = seed.to_string();
        let threads = threads.to_string();
        let trace = std::env::temp_dir().join("at-proptest-obs-tune.trace.json");
        let base = [
            "tune", "--workload", "dedispersion", "--strategy", "genetic",
            "--budget-ms", "1200", "--construction-ms", "0",
            "--seed", &seed, "--eval-threads", &threads, "--json",
        ];
        let plain = tune(&parsed(&base)).unwrap();
        let mut traced_args = base.to_vec();
        let trace_path = trace.to_str().unwrap();
        traced_args.extend(["--metrics", "--trace", trace_path]);
        let traced = tune(&parsed(&traced_args)).unwrap();

        let plain_doc: serde_json::Value = serde_json::from_str(plain.trim()).unwrap();
        let traced_doc: serde_json::Value = serde_json::from_str(traced.trim()).unwrap();
        // Everything the tuning run computed is identical; the traced run
        // only gains the embedded `observability` envelope.
        for field in [
            "evaluations",
            "best_runtime_ms",
            "best_config_id",
            "best_config",
            "total_ms",
            "metrics",
        ] {
            prop_assert!(
                plain_doc.get(field) == traced_doc.get(field),
                "field `{}` diverged under tracing", field
            );
        }
        prop_assert!(plain_doc.get("observability").is_none());
        prop_assert!(traced_doc.get("observability").is_some());
    }
}
