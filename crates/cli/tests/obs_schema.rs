//! Schema-walk tests for the two observability artifacts: the Chrome
//! trace-event export (`--trace`) and the `atss.metrics.v1` envelope
//! (`--metrics`). Every event and every envelope field is visited and
//! type-checked through the serde_json shim, independently of the
//! tool's own `trace-lint` (which is exercised separately and must
//! agree).

use std::sync::Mutex;

use at_cli::args::{parse, ParsedArgs};
use at_cli::commands::{trace_lint, tune};

/// The recorder is process-global; the two tests in this binary must not
/// overlap.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn parsed(args: &[&str]) -> ParsedArgs {
    parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
}

/// One traced multi-threaded tune run, returning (trace text, tune --json
/// line with the embedded envelope).
fn traced_tune(trace: &std::path::Path) -> (String, String) {
    let out = tune(&parsed(&[
        "tune",
        "--workload",
        "dedispersion",
        "--strategy",
        "particle-swarm",
        "--budget-ms",
        "1500",
        "--seed",
        "11",
        "--construction-ms",
        "0",
        "--eval-threads",
        "3",
        "--json",
        "--metrics",
        "--trace",
        trace.to_str().unwrap(),
    ]))
    .unwrap();
    (std::fs::read_to_string(trace).unwrap(), out)
}

#[test]
fn trace_export_satisfies_the_event_schema() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = std::env::temp_dir().join("at-obs-schema-trace.json");
    let (text, _) = traced_tune(&trace);

    let doc: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = doc.as_array().expect("top level is an array");
    assert!(!events.is_empty());

    let mut last_ts: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    let mut span_names = Vec::new();
    let mut process_named = false;
    for event in events {
        let ph = event.get("ph").unwrap().as_str().unwrap();
        let tid = event.get("tid").unwrap().as_i64().unwrap();
        assert_eq!(event.get("pid").unwrap().as_i64(), Some(1));
        let name = event.get("name").unwrap().as_str().unwrap();
        match ph {
            "M" => {
                assert!(matches!(name, "process_name" | "thread_name"), "{name}");
                if name == "process_name" {
                    assert_eq!(
                        event.get("args").unwrap().get("name").unwrap().as_str(),
                        Some("atss")
                    );
                    process_named = true;
                }
            }
            "X" => {
                assert!(event.get("cat").unwrap().as_str().is_some());
                let ts = event.get("ts").unwrap().as_f64().unwrap();
                assert!(event.get("dur").unwrap().as_f64().unwrap() >= 0.0);
                // Per-thread timestamps are monotone: drain sorts records
                // by start time, so each tid's subsequence is ordered.
                if let Some(prev) = last_ts.get(&tid) {
                    assert!(ts >= *prev, "tid {tid}: {ts} after {prev}");
                }
                last_ts.insert(tid, ts);
                span_names.push(name.to_string());
            }
            "i" => {
                assert_eq!(event.get("s").unwrap().as_str(), Some("t"));
                assert!(event.get("ts").unwrap().as_f64().is_some());
            }
            other => panic!("unknown phase {other}"),
        }
    }
    assert!(process_named);
    // The traced tune pipeline is visible end to end: construction phases
    // plus the batched-eval phases with per-worker spans.
    for expected in [
        "lower",
        "solve",
        "resolve",
        "fanout",
        "eval-worker",
        "merge",
    ] {
        assert!(
            span_names.iter().any(|n| n == expected),
            "missing span `{expected}` in {span_names:?}"
        );
    }

    // The tool's own linter agrees with this walk.
    let lint = trace_lint(&parsed(&["trace-lint", trace.to_str().unwrap()])).unwrap();
    assert!(lint.contains("trace OK"), "{lint}");
}

#[test]
fn metrics_envelope_satisfies_the_schema() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let trace = std::env::temp_dir().join("at-obs-schema-envelope.json");
    let (_, out) = traced_tune(&trace);

    let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
    let envelope = doc.get("observability").expect("embedded envelope");
    assert_eq!(
        envelope.get("schema").unwrap().as_str(),
        Some("atss.metrics.v1")
    );
    assert_eq!(envelope.get("command").unwrap().as_str(), Some("tune"));
    assert!(envelope.get("spans").unwrap().as_i64().unwrap() > 0);

    for phase in envelope.get("phases").unwrap().as_array().unwrap() {
        assert!(phase.get("cat").unwrap().as_str().is_some());
        assert!(phase.get("name").unwrap().as_str().is_some());
        assert!(phase.get("count").unwrap().as_i64().unwrap() > 0);
        assert!(phase.get("total_us").unwrap().as_f64().unwrap() >= 0.0);
        let max = phase.get("max_us").unwrap().as_f64().unwrap();
        let total = phase.get("total_us").unwrap().as_f64().unwrap();
        assert!(max <= total + 1e-9, "max {max} > total {total}");
    }

    let alloc = envelope.get("alloc").unwrap();
    assert!(
        alloc.get("installed").unwrap() == &serde_json::Value::Bool(true)
            || alloc.get("installed").unwrap() == &serde_json::Value::Bool(false)
    );
    assert!(alloc.get("peak_bytes").unwrap().as_i64().unwrap() >= 0);

    // The solver and eval counter sections both rode along, and the eval
    // section agrees with the tune DTO's own metrics object.
    let solve = envelope.get("solve").unwrap();
    assert!(solve.get("duration_ms").unwrap().as_f64().unwrap() > 0.0);
    let eval = envelope.get("eval").unwrap();
    let dto = doc.get("metrics").unwrap();
    for field in ["batches", "proposed", "measured", "cache_hits", "threads"] {
        assert_eq!(
            eval.get(field).unwrap().as_i64(),
            dto.get(field).unwrap().as_i64(),
            "{field}"
        );
    }
}
