//! A small `--flag value` argument parser.
//!
//! The tool has a handful of flags per subcommand; a hand-rolled parser keeps
//! the dependency set to the crates the library itself needs.

use std::collections::BTreeMap;

/// Parsed command-line arguments: a subcommand, positional arguments and
/// `--key value` / `--switch` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` pairs; switches (no value) map to `"true"`.
    pub options: BTreeMap<String, String>,
}

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgError {
    /// A flag that requires a value appeared without one.
    MissingValue(String),
    /// A flag was passed that the subcommand does not understand.
    UnknownFlag(String),
    /// A flag value could not be parsed (wrong type or unknown name).
    InvalidValue {
        /// The flag.
        flag: String,
        /// The offending value.
        value: String,
        /// What was expected.
        expected: String,
    },
    /// The required flag is missing.
    MissingFlag(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid value `{value}` for --{flag} (expected {expected})"
                )
            }
            ArgError::MissingFlag(flag) => write!(f, "missing required flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that do not take a value.
const SWITCHES: &[&str] = &["full", "help", "quiet", "mmap", "json", "prune", "metrics"];

/// Parse raw arguments into a [`ParsedArgs`].
pub fn parse(args: &[String]) -> Result<ParsedArgs, ArgError> {
    let mut parsed = ParsedArgs::default();
    let mut i = 0usize;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if SWITCHES.contains(&name) {
                parsed.options.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                if value.starts_with("--") {
                    return Err(ArgError::MissingValue(name.to_string()));
                }
                parsed.options.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else if parsed.command.is_none() {
            parsed.command = Some(arg.clone());
            i += 1;
        } else {
            parsed.positional.push(arg.clone());
            i += 1;
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// The value of `--flag`, if present.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(|s| s.as_str())
    }

    /// The value of a required `--flag`.
    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::MissingFlag(flag.to_string()))
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, flag: &str) -> bool {
        self.get(flag) == Some("true")
    }

    /// Parse a numeric flag with a default.
    pub fn number<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(text) => text.parse().map_err(|_| ArgError::InvalidValue {
                flag: flag.to_string(),
                value: text.to_string(),
                expected: "a number".to_string(),
            }),
        }
    }

    /// Reject flags outside the allowed set (catches typos early).
    pub fn ensure_known_flags(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) && !SWITCHES.contains(&key.as_str()) {
                return Err(ArgError::UnknownFlag(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_flags_and_positionals() {
        let parsed = parse(&to_args(&[
            "construct",
            "--workload",
            "hotspot",
            "--method",
            "optimized",
            "extra",
        ]))
        .unwrap();
        assert_eq!(parsed.command.as_deref(), Some("construct"));
        assert_eq!(parsed.get("workload"), Some("hotspot"));
        assert_eq!(parsed.get("method"), Some("optimized"));
        assert_eq!(parsed.positional, vec!["extra".to_string()]);
    }

    #[test]
    fn switches_do_not_consume_values() {
        let parsed = parse(&to_args(&["table2", "--full", "--method", "optimized"])).unwrap();
        assert!(parsed.switch("full"));
        assert_eq!(parsed.get("method"), Some("optimized"));
    }

    #[test]
    fn missing_value_is_reported() {
        assert_eq!(
            parse(&to_args(&["construct", "--workload"])),
            Err(ArgError::MissingValue("workload".to_string()))
        );
        assert_eq!(
            parse(&to_args(&["construct", "--workload", "--method"])),
            Err(ArgError::MissingValue("workload".to_string()))
        );
    }

    #[test]
    fn require_and_number_helpers() {
        let parsed = parse(&to_args(&["tune", "--budget-ms", "1500"])).unwrap();
        assert_eq!(parsed.number("budget-ms", 0u64).unwrap(), 1500);
        assert_eq!(parsed.number("seed", 42u64).unwrap(), 42);
        assert!(parsed.require("strategy").is_err());
        let bad = parse(&to_args(&["tune", "--budget-ms", "abc"])).unwrap();
        assert!(bad.number("budget-ms", 0u64).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_by_ensure() {
        let parsed = parse(&to_args(&["construct", "--wrkload", "hotspot"])).unwrap();
        assert_eq!(
            parsed.ensure_known_flags(&["workload", "method"]),
            Err(ArgError::UnknownFlag("wrkload".to_string()))
        );
        let ok = parse(&to_args(&["construct", "--workload", "hotspot"])).unwrap();
        assert!(ok.ensure_known_flags(&["workload", "method"]).is_ok());
    }

    #[test]
    fn error_messages_mention_the_flag() {
        assert!(ArgError::MissingFlag("spec".into())
            .to_string()
            .contains("spec"));
        assert!(ArgError::UnknownFlag("x".into()).to_string().contains("x"));
        assert!(ArgError::MissingValue("y".into()).to_string().contains("y"));
        let e = ArgError::InvalidValue {
            flag: "budget-ms".into(),
            value: "abc".into(),
            expected: "a number".into(),
        };
        assert!(e.to_string().contains("budget-ms") && e.to_string().contains("abc"));
    }
}
