//! The `atss daemon` / `atss client` subcommands and the `--daemon`
//! resolution path of `construct` and `tune`.
//!
//! `atss daemon run` hosts an [`at_daemon::Daemon`] in the foreground
//! (the `atssd` deployment unit); `atss daemon status|stop|ping` control
//! a running one over its socket. `atss client resolve` is the minimal
//! consumer: ship a spec, wait through any build, mmap-attach to the
//! validated entry. `construct --daemon <socket>` and
//! `tune --daemon <socket>` route their space acquisition through the
//! same path, falling back to local construction when the daemon is
//! unreachable — a tuner never fails just because the server is down.
//!
//! Everything here requires Unix domain sockets; on other platforms the
//! subcommands exist but report that the daemon is unsupported.

#[cfg(unix)]
pub use imp::{client, daemon, try_daemon_obtain, DaemonServed};

#[cfg(not(unix))]
pub use stub::{client, daemon, try_daemon_obtain, DaemonServed};

#[cfg(unix)]
mod imp {
    use std::fmt::Write as _;
    use std::time::{Duration, Instant};

    use at_daemon::{
        Daemon, DaemonClient, DaemonConfig, DaemonError, Resolved, ServeKind, PROTOCOL_VERSION,
    };
    use at_searchspace::{Method, SearchSpace, SearchSpaceSpec};
    use at_store::{GcOptions, LoadReport};

    use crate::args::ParsedArgs;
    use crate::commands::{resolve_method, resolve_spec};
    use crate::obs::{store_section, ObsSession};
    use crate::CliError;

    /// How `obtain_space` got its space when `--daemon` won: the daemon's
    /// reply plus the client-side attach report and timings (what the
    /// summary and JSON outputs surface).
    pub struct DaemonServed {
        /// The socket the space came from.
        pub socket: String,
        /// The daemon's `Ready` reply.
        pub resolved: Resolved,
        /// The client-side attach (always zero-copy mmap, index trusted).
        pub report: LoadReport,
        /// Wall-clock of connect + resolve (includes any build wait).
        pub resolve_time: Duration,
        /// Wall-clock of the mmap attach.
        pub attach_time: Duration,
    }

    impl DaemonServed {
        /// The `cache_source` label for the JSON envelopes:
        /// `daemon-warm`, `daemon-validated`, `daemon-built`,
        /// `daemon-coalesced`.
        pub fn source_label(&self) -> &'static str {
            match self.resolved.served {
                ServeKind::Warm => "daemon-warm",
                ServeKind::Validated => "daemon-validated",
                ServeKind::Built => "daemon-built",
                ServeKind::Coalesced => "daemon-coalesced",
            }
        }

        /// Render the `daemon:` lines of the human summary format.
        pub fn summary_lines(&self, out: &mut String) {
            writeln!(
                out,
                "daemon:               {} (resolved in {:.3?} via {})",
                self.resolved.served.label(),
                self.resolve_time,
                self.socket
            )
            .expect("write to string");
            writeln!(
                out,
                "daemon attach:        {} in {:.3?}",
                self.report.describe(),
                self.attach_time
            )
            .expect("write to string");
            writeln!(
                out,
                "daemon fingerprint:   {}",
                self.resolved.fingerprint.to_hex()
            )
            .expect("write to string");
            writeln!(
                out,
                "daemon file:          {} ({} bytes on disk)",
                self.resolved.path.display(),
                self.resolved.file_bytes
            )
            .expect("write to string");
        }
    }

    /// Resolve a space through the daemon at `socket`: connect, ship the
    /// spec, wait through any build, mmap-attach to the validated entry.
    /// Any failure (daemon down, protocol error, unshippable spec) is
    /// returned for the caller to fall back on local construction.
    pub fn try_daemon_obtain(
        socket: &str,
        spec: &SearchSpaceSpec,
        method: Method,
        prune: bool,
    ) -> Result<(SearchSpace, DaemonServed), DaemonError> {
        let span = at_obs::span("daemon-resolve", "daemon");
        let resolve_start = Instant::now();
        let mut client = DaemonClient::connect(socket)?;
        let resolved = client.resolve_spec(spec, method, prune, |_| {})?;
        let resolve_time = resolve_start.elapsed();
        let attach_start = Instant::now();
        let loaded = resolved.attach().map_err(DaemonError::Store)?;
        let attach_time = attach_start.elapsed();
        drop(
            span.arg("rows", resolved.rows)
                .arg("served", resolved.served as u64),
        );
        Ok((
            loaded.space,
            DaemonServed {
                socket: socket.to_string(),
                resolved,
                report: loaded.report,
                resolve_time,
                attach_time,
            },
        ))
    }

    /// `atss daemon <run|status|stop|ping>`
    pub fn daemon(args: &ParsedArgs) -> Result<String, CliError> {
        let action = args.positional.first().map(|s| s.as_str()).ok_or_else(|| {
            CliError::Run(
                "usage: atss daemon <run|status|stop|ping> --socket <path> [flags]".to_string(),
            )
        })?;
        match action {
            "run" => daemon_run(args),
            "status" => {
                args.ensure_known_flags(&["socket"])?;
                let mut client = connect(args)?;
                let json = client.status_json().map_err(run_err)?;
                Ok(format!("{json}\n"))
            }
            "stop" => {
                args.ensure_known_flags(&["socket"])?;
                let socket = args.require("socket")?;
                let mut client = connect(args)?;
                client.shutdown().map_err(run_err)?;
                Ok(format!("daemon at {socket} is draining and will exit\n"))
            }
            "ping" => {
                args.ensure_known_flags(&["socket"])?;
                let mut client = connect(args)?;
                let pong = client.ping().map_err(run_err)?;
                Ok(format!(
                    "pong: pid {}, up {} ms (ATSD protocol v{PROTOCOL_VERSION})\n",
                    pong.pid, pong.uptime_ms
                ))
            }
            other => Err(CliError::Run(format!(
                "unknown daemon action `{other}` (run, status, stop, ping)"
            ))),
        }
    }

    /// `atss daemon run`: host the space-server in the foreground until
    /// SIGTERM/SIGINT or a client `Shutdown`, then report the session.
    fn daemon_run(args: &ParsedArgs) -> Result<String, CliError> {
        args.ensure_known_flags(&[
            "socket",
            "cache-dir",
            "pidfile",
            "max-bytes",
            "max-entries",
            "trace",
        ])?;
        let obs = ObsSession::begin(args);
        let socket = args.require("socket")?;
        let cache_dir = args.require("cache-dir")?;
        let mut config = DaemonConfig::new(socket, cache_dir);
        if let Some(pidfile) = args.get("pidfile") {
            config.pidfile = Some(pidfile.into());
        }
        // GC bounds are optional: passing either turns on a sweep after
        // every build (pinned entries are skipped — a client still
        // holding a reply never loses its file).
        if args.get("max-bytes").is_some() || args.get("max-entries").is_some() {
            let max_bytes: u64 = args.number("max-bytes", u64::MAX).map_err(CliError::Args)?;
            let max_entries: usize = args
                .number("max-entries", usize::MAX)
                .map_err(CliError::Args)?;
            config.gc = Some(GcOptions {
                max_bytes,
                max_entries,
            });
        }
        let daemon = Daemon::bind(config).map_err(run_err)?;
        let handle = daemon.handle();
        let summary = daemon.run().map_err(run_err)?;
        let envelope = obs.finish(
            "daemon run",
            vec![("store", store_section(handle.store().metrics()))],
        )?;
        let mut out = String::new();
        writeln!(
            out,
            "daemon exited after {:.3?}: {} connections, {} requests, {} builds, \
             {} warm serves, {} coalesced, {} protocol errors",
            summary.uptime,
            summary.connections,
            summary.requests,
            summary.builds,
            summary.served_warm,
            summary.coalesced,
            summary.proto_errors
        )
        .expect("write to string");
        writeln!(
            out,
            "cache stats: {}",
            handle.store().metrics().summary_line()
        )
        .expect("write to string");
        Ok(crate::commands::append_metrics(out, envelope))
    }

    /// `atss client <resolve|ping>`
    pub fn client(args: &ParsedArgs) -> Result<String, CliError> {
        let action = args.positional.first().map(|s| s.as_str()).ok_or_else(|| {
            CliError::Run("usage: atss client <resolve|ping> --socket <path> [flags]".to_string())
        })?;
        match action {
            "resolve" => client_resolve(args),
            "ping" => {
                args.ensure_known_flags(&["socket"])?;
                let mut client = connect(args)?;
                let pong = client.ping().map_err(run_err)?;
                Ok(format!(
                    "pong: pid {}, up {} ms (ATSD protocol v{PROTOCOL_VERSION})\n",
                    pong.pid, pong.uptime_ms
                ))
            }
            other => Err(CliError::Run(format!(
                "unknown client action `{other}` (resolve, ping)"
            ))),
        }
    }

    /// `atss client resolve`: get-or-build through the daemon, then
    /// mmap-attach and report what happened.
    fn client_resolve(args: &ParsedArgs) -> Result<String, CliError> {
        args.ensure_known_flags(&["socket", "workload", "spec", "method"])?;
        let socket = args.require("socket")?;
        let spec = resolve_spec(args)?;
        let method = resolve_method(args)?;
        let (space, served) =
            try_daemon_obtain(socket, &spec, method, args.switch("prune")).map_err(run_err)?;
        let mut out = String::new();
        writeln!(out, "space:                {}", spec.name).expect("write to string");
        writeln!(out, "method:               {}", method.label()).expect("write to string");
        writeln!(out, "valid configurations: {}", space.len()).expect("write to string");
        served.summary_lines(&mut out);
        Ok(out)
    }

    fn connect(args: &ParsedArgs) -> Result<DaemonClient, CliError> {
        let socket = args.require("socket")?;
        DaemonClient::connect(socket)
            .map_err(|e| CliError::Run(format!("cannot reach daemon at `{socket}`: {e}")))
    }

    fn run_err(e: DaemonError) -> CliError {
        CliError::Run(e.to_string())
    }
}

#[cfg(not(unix))]
mod stub {
    use at_daemon::DaemonError;
    use at_searchspace::{Method, SearchSpace, SearchSpaceSpec};

    use crate::args::ParsedArgs;
    use crate::CliError;

    /// Placeholder on platforms without Unix domain sockets.
    pub struct DaemonServed {
        /// Never populated; present so callers type-check on every platform.
        pub resolve_time: std::time::Duration,
        /// Never populated; present so callers type-check on every platform.
        pub attach_time: std::time::Duration,
    }

    impl DaemonServed {
        /// See the Unix implementation.
        pub fn source_label(&self) -> &'static str {
            "daemon-unsupported"
        }

        /// See the Unix implementation.
        pub fn summary_lines(&self, _out: &mut String) {}
    }

    /// The daemon requires Unix domain sockets.
    pub fn try_daemon_obtain(
        _socket: &str,
        _spec: &SearchSpaceSpec,
        _method: Method,
        _prune: bool,
    ) -> Result<(SearchSpace, DaemonServed), DaemonError> {
        Err(DaemonError::Unshippable(
            "the space-server daemon requires Unix domain sockets".to_string(),
        ))
    }

    /// The daemon requires Unix domain sockets.
    pub fn daemon(_args: &ParsedArgs) -> Result<String, CliError> {
        Err(CliError::Run(
            "the space-server daemon requires Unix domain sockets".to_string(),
        ))
    }

    /// The daemon requires Unix domain sockets.
    pub fn client(_args: &ParsedArgs) -> Result<String, CliError> {
        Err(CliError::Run(
            "the space-server daemon requires Unix domain sockets".to_string(),
        ))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use crate::run;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn temp_base(tag: &str) -> std::path::PathBuf {
        let base = std::env::temp_dir().join(format!("at-cli-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        base
    }

    #[test]
    fn daemon_serves_construct_and_client_then_stops() {
        let base = temp_base("roundtrip");
        let socket = base.join("atssd.sock");
        let cache = base.join("cache");
        let daemon =
            at_daemon::Daemon::bind(at_daemon::DaemonConfig::new(&socket, &cache)).unwrap();
        let server = std::thread::spawn(move || daemon.run().unwrap());
        let sock = socket.to_str().unwrap().to_string();

        // Cold resolve: the daemon builds, the client attaches zero-copy.
        let cold = run(&args(&[
            "construct",
            "--workload",
            "dedispersion",
            "--daemon",
            &sock,
        ]))
        .unwrap();
        assert!(cold.contains("daemon:               built"), "{cold}");
        assert!(cold.contains("zero-copy (mmap)"), "{cold}");
        assert!(cold.contains("persisted index trusted"), "{cold}");

        // Warm resolve: served O(header), no build report in the summary.
        let warm = run(&args(&[
            "construct",
            "--workload",
            "dedispersion",
            "--daemon",
            &sock,
        ]))
        .unwrap();
        assert!(warm.contains("daemon:               warm"), "{warm}");
        assert!(warm.contains("construction time:    none"), "{warm}");

        // `client resolve` reports the same space.
        let client = run(&args(&[
            "client",
            "resolve",
            "--socket",
            &sock,
            "--workload",
            "dedispersion",
        ]))
        .unwrap();
        assert!(client.contains("valid configurations:"), "{client}");
        assert!(client.contains("daemon:               warm"), "{client}");

        // tune --daemon rides the same path.
        let tuned = run(&args(&[
            "tune",
            "--workload",
            "dedispersion",
            "--budget-ms",
            "1000",
            "--daemon",
            &sock,
        ]))
        .unwrap();
        assert!(tuned.contains("[daemon, warm]"), "{tuned}");

        let pong = run(&args(&["daemon", "ping", "--socket", &sock])).unwrap();
        assert!(pong.contains("pong: pid"), "{pong}");
        assert!(pong.contains("ATSD protocol v1"), "{pong}");

        let status = run(&args(&["daemon", "status", "--socket", &sock])).unwrap();
        assert!(
            status.contains("\"schema\":\"atss.daemon-status.v1\""),
            "{status}"
        );
        assert!(status.contains("\"builds\":1"), "{status}");

        let stop = run(&args(&["daemon", "stop", "--socket", &sock])).unwrap();
        assert!(stop.contains("draining"), "{stop}");
        server.join().unwrap();
        assert!(!socket.exists(), "socket removed on shutdown");
    }

    #[test]
    fn unreachable_daemon_falls_back_to_local_construction() {
        let base = temp_base("fallback");
        let sock = base.join("no-such.sock");
        let out = run(&args(&[
            "construct",
            "--workload",
            "dedispersion",
            "--daemon",
            sock.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(!out.contains("daemon:     "), "{out}");
        assert!(out.contains("valid configurations:"), "{out}");
        assert!(out.contains("construction time:"), "{out}");
    }
}
