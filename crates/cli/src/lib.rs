//! # at-cli — the `atss` command-line tool
//!
//! A small front end over the library crates, the Rust counterpart of using
//! Kernel Tuner's `SearchSpace` from a script (the integration surface the
//! paper contributes in Section 4.4, exercised on the Section 5.3 workloads):
//!
//! ```text
//! atss workloads                                  list the built-in spaces
//! atss construct --workload gemm --method optimized --format summary
//! atss construct --spec space.json --format csv --out space.csv
//! atss compare   --workload microhh --methods optimized,chain-of-trees,original
//! atss tune      --workload hotspot --strategy random --budget-ms 10000
//! atss spec-template                              print an example JSON spec
//! ```
//!
//! Every pipeline command additionally accepts `--trace <file>` (Chrome
//! trace-event export of the run, via [`at_obs`]) and `--metrics` (a
//! one-line `atss.metrics.v1` envelope); `atss trace-lint` validates the
//! trace files the tool itself writes. See `atss help` for the contract.
//!
//! Every command returns its report as a string (printed by `main`), which is
//! what the unit tests assert on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod daemon_cmd;
pub mod obs;

use args::{parse, ArgError};

/// Top-level error type of the tool.
#[derive(Debug)]
pub enum CliError {
    /// Command-line syntax error.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// Error from the underlying libraries (construction, parsing, I/O).
    Run(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(cmd) => {
                write!(f, "unknown command `{cmd}` (run `atss help`)")
            }
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Run the tool on raw command-line arguments and return its output text.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let parsed = parse(raw_args)?;
    let command = parsed.command.clone().unwrap_or_else(|| "help".to_string());
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(commands::help()),
        "workloads" => commands::workloads(&parsed),
        "check" => commands::check(&parsed),
        "construct" => commands::construct(&parsed),
        "compare" => commands::compare(&parsed),
        "tune" => commands::tune(&parsed),
        "cache" => commands::cache(&parsed),
        "daemon" => daemon_cmd::daemon(&parsed),
        "client" => daemon_cmd::client(&parsed),
        "trace-lint" => commands::trace_lint(&parsed),
        "capabilities" => commands::capabilities(&parsed),
        "spec-template" => Ok(commands::spec_template()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_arguments_prints_help() {
        let out = run(&[]).unwrap();
        assert!(out.contains("construct"));
        assert!(out.contains("workloads"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run(&to_args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn workloads_lists_table2_spaces() {
        let out = run(&to_args(&["workloads"])).unwrap();
        for name in ["Dedispersion", "GEMM", "MicroHH", "ATF PRL 8x8"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn construct_summary_for_a_small_workload() {
        let out = run(&to_args(&[
            "construct",
            "--workload",
            "dedispersion",
            "--method",
            "optimized",
            "--format",
            "summary",
        ]))
        .unwrap();
        assert!(out.contains("Dedispersion"));
        assert!(out.contains("valid configurations"));
    }

    #[test]
    fn construct_rejects_unknown_method_and_workload() {
        assert!(run(&to_args(&["construct", "--workload", "nope"])).is_err());
        assert!(run(&to_args(&[
            "construct",
            "--workload",
            "dedispersion",
            "--method",
            "magic"
        ]))
        .is_err());
    }

    #[test]
    fn spec_template_is_valid_json_and_constructible() {
        let out = run(&to_args(&["spec-template"])).unwrap();
        let spec = at_searchspace::spec_from_json(&out).unwrap();
        assert!(spec.num_params() >= 2);
    }

    #[test]
    fn compare_reports_every_requested_method() {
        let out = run(&to_args(&[
            "compare",
            "--workload",
            "dedispersion",
            "--methods",
            "optimized,chain-of-trees",
        ]))
        .unwrap();
        assert!(out.contains("optimized"));
        assert!(out.contains("chain-of-trees"));
    }

    #[test]
    fn tune_runs_with_a_tiny_budget() {
        let out = run(&to_args(&[
            "tune",
            "--workload",
            "dedispersion",
            "--strategy",
            "random",
            "--budget-ms",
            "2000",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("best runtime"));
    }
}
