//! Observability plumbing for the CLI: the `--trace` and `--metrics` flags.
//!
//! Every pipeline command (`construct`, `check`, `compare`, `tune`, `cache`)
//! opens an [`ObsSession`] before it starts real work. When either flag is
//! present the session turns the process-wide [`at_obs`] recorder on, and at
//! the end of the command:
//!
//! - `--trace <file>` writes the drained spans as a Chrome trace-event JSON
//!   array ([`at_obs::trace::chrome_trace`]) loadable in Perfetto /
//!   `about://tracing` as-is;
//! - `--metrics` assembles the one-line `atss.metrics.v1` envelope: phase
//!   timers aggregated from the same spans, the peak-allocation probe, and
//!   whichever of the solver / store / eval counter sections the command
//!   produced.
//!
//! Without either flag the session is inert and the recorder stays disabled,
//! so the instrumented pipeline pays only the documented one-atomic-load
//! cost per span site. Enabling the recorder never changes what the pipeline
//! computes — only that its timing is written down (the `proptest_obs`
//! integration tests pin this down as byte-identity of exports and
//! trajectory-identity of tuning runs).

use at_obs::json::Json;
use at_searchspace::BuildReport;
use at_store::StoreMetrics;
use at_tuner::EvalMetrics;

use crate::args::ParsedArgs;
use crate::CliError;

/// One command's observability window: created first thing, finished (or
/// dropped) last. Owns the recorder while active so an early `?` return
/// cannot leave tracing enabled for the next command in a long-lived
/// process (the test harness, notably).
pub struct ObsSession {
    trace_path: Option<String>,
    metrics: bool,
    active: bool,
    alloc_baseline: usize,
}

impl ObsSession {
    /// Start a session from a command's parsed flags. Enables the recorder
    /// (and clears any stale records) iff `--trace` or `--metrics` was
    /// passed.
    pub fn begin(args: &ParsedArgs) -> ObsSession {
        let trace_path = args.get("trace").map(str::to_string);
        let metrics = args.switch("metrics");
        let active = trace_path.is_some() || metrics;
        if active {
            at_obs::enable();
            let _ = at_obs::drain();
        }
        ObsSession {
            trace_path,
            metrics,
            active,
            alloc_baseline: at_obs::alloc::reset_peak(),
        }
    }

    /// Whether this session owns the recorder (either flag was passed).
    pub fn active(&self) -> bool {
        self.active
    }

    /// Close the session: disable the recorder, write the trace file when
    /// `--trace` was passed, and return the one-line `atss.metrics.v1`
    /// envelope (without a trailing newline) when `--metrics` was.
    ///
    /// `sections` are per-command counter objects (see [`solve_section`],
    /// [`store_section`], [`eval_section`]) appended to the envelope in
    /// order.
    pub fn finish(
        mut self,
        command: &str,
        sections: Vec<(&'static str, Json)>,
    ) -> Result<Option<String>, CliError> {
        if !self.active {
            return Ok(None);
        }
        self.active = false;
        at_obs::disable();
        let records = at_obs::drain();
        if let Some(path) = &self.trace_path {
            std::fs::write(path, at_obs::trace::chrome_trace(&records))
                .map_err(|e| CliError::Run(format!("cannot write trace `{path}`: {e}")))?;
        }
        if !self.metrics {
            return Ok(None);
        }
        let mut doc = Json::obj();
        doc.push("schema", Json::Str("atss.metrics.v1".to_string()));
        doc.push("command", Json::Str(command.to_string()));
        doc.push("spans", Json::U64(records.len() as u64));
        let mut phases = Vec::new();
        for p in at_obs::phase_totals(&records) {
            let mut entry = Json::obj();
            entry.push("cat", Json::Str(p.cat.to_string()));
            entry.push("name", Json::Str(p.name.to_string()));
            entry.push("count", Json::U64(p.count));
            entry.push("total_us", Json::F64(p.total_ns as f64 / 1_000.0));
            entry.push("max_us", Json::F64(p.max_ns as f64 / 1_000.0));
            phases.push(entry);
        }
        doc.push("phases", Json::Arr(phases));
        let mut alloc = Json::obj();
        alloc.push("installed", Json::Bool(at_obs::alloc::installed()));
        alloc.push(
            "peak_bytes",
            Json::U64(at_obs::alloc::peak_since(self.alloc_baseline) as u64),
        );
        doc.push("alloc", alloc);
        for (name, section) in sections {
            doc.push(name, section);
        }
        Ok(Some(doc.to_string()))
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        if self.active {
            at_obs::disable();
            let _ = at_obs::drain();
        }
    }
}

/// The `solve` section of the envelope: the construction counters of one
/// [`BuildReport`].
pub fn solve_section(report: &BuildReport) -> Json {
    let mut solve = Json::obj();
    solve.push("method", Json::Str(report.method.label().to_string()));
    solve.push(
        "duration_ms",
        Json::F64(report.duration.as_secs_f64() * 1_000.0),
    );
    solve.push("constraints", Json::U64(report.num_constraints as u64));
    solve.push("nodes", Json::U64(report.stats.nodes));
    solve.push(
        "constraint_checks",
        Json::U64(report.stats.constraint_checks),
    );
    solve.push("solutions", Json::U64(report.stats.solutions));
    solve.push("backtracks", Json::U64(report.stats.backtracks));
    solve.push(
        "preprocess_removed",
        Json::U64(report.stats.preprocess_removed),
    );
    solve.push("valid", Json::U64(report.num_valid as u64));
    solve
}

/// The `store` section of the envelope: one [`StoreMetrics`] snapshot,
/// including the index-fallback repairs and gc evictions the cache
/// subcommands also surface in their human output.
pub fn store_section(metrics: &StoreMetrics) -> Json {
    let mut store = Json::obj();
    store.push("hits", Json::U64(metrics.hits()));
    store.push("misses", Json::U64(metrics.misses()));
    store.push("rebuilds", Json::U64(metrics.rebuilds()));
    store.push("uncacheable", Json::U64(metrics.uncacheable()));
    store.push("index_fallbacks", Json::U64(metrics.index_fallbacks()));
    store.push("gc_evictions", Json::U64(metrics.gc_evictions()));
    store.push("gc_pin_skips", Json::U64(metrics.gc_pin_skips()));
    store.push("pinned", Json::U64(metrics.pinned_now()));
    store.push(
        "mean_load_us",
        match metrics.mean_load_time() {
            Some(d) => Json::F64(d.as_secs_f64() * 1_000_000.0),
            None => Json::Null,
        },
    );
    store
}

/// The `eval` section of the envelope: the tuning pipeline's
/// [`EvalMetrics`] counters (the same numbers `tune --json` reports under
/// `metrics`, here in the unified envelope).
pub fn eval_section(metrics: &EvalMetrics) -> Json {
    let mut eval = Json::obj();
    eval.push("batches", Json::U64(metrics.batches));
    eval.push("proposed", Json::U64(metrics.proposed));
    eval.push("measured", Json::U64(metrics.measured));
    eval.push("cache_hits", Json::U64(metrics.cache_hits));
    eval.push("deduped", Json::U64(metrics.deduped));
    eval.push("rejected", Json::U64(metrics.rejected));
    eval.push("out_of_budget", Json::U64(metrics.out_of_budget));
    eval.push("largest_batch", Json::U64(metrics.largest_batch as u64));
    eval.push("threads", Json::U64(metrics.threads as u64));
    eval.push("fanout_batches", Json::U64(metrics.fanout_batches));
    eval.push(
        "fanout_thread_slots",
        Json::U64(metrics.fanout_thread_slots),
    );
    eval
}
