//! Implementations of the `atss` subcommands.

use std::fmt::Write as _;
use std::time::Duration;

use at_obs::json::Json;
use at_searchspace::{
    build_search_space, build_search_space_with, spec_from_json, to_csv, to_json_cache,
    BuildOptions, BuildReport, Method, SearchSpace, SearchSpaceSpec, SpaceCharacteristics,
};
use at_store::{
    CacheStatus, GcOptions, LoadOptions, SpaceStore, SpecFingerprint, StoreEntry, StoreError,
    StoreOutcome,
};
use at_tuner::{all_strategy_names, strategy_by_name, tune_with_options, EvalOptions, TuningRun};
use at_workloads::{all_real_world, performance_model_for, real_world_by_name, real_world_names};

use crate::args::ParsedArgs;
use crate::daemon_cmd::{try_daemon_obtain, DaemonServed};
use crate::obs::{eval_section, solve_section, store_section, ObsSession};
use crate::CliError;

/// The help text.
pub fn help() -> String {
    "\
atss — auto-tuning search space construction (ICPP'25 reproduction)

USAGE:
    atss <command> [flags]

COMMANDS:
    workloads       List the built-in real-world search spaces (Table 2)
    check           Statically analyze a spec's restrictions (no solve)
                      --workload <name> | --spec <file.json>
                      --json              one JSON object per diagnostic plus a
                                          summary line; findings are in-band
                      exit code is 1 when an error-severity diagnostic
                      (AT0001/AT0007/AT0008/AT0009) is found
    construct       Construct a search space and print or export it
                      --workload <name> | --spec <file.json>
                      --method <brute-force|original|optimized|parallel-optimized|
                                chain-of-trees|blocking-clause>   (default: optimized)
                      --format <count|summary|csv|json>           (default: summary)
                      --out <path>                                 write instead of print
                      --cache-dir <dir>   serve from / persist to an ATSS space cache
                      --mmap              zero-copy warm loads: mmap the cached
                                          arena and trust its persisted index
                      --daemon <socket>   resolve through a running space-server
                                          (O(header) mmap attach; falls back to
                                          local construction when unreachable)
                      --prune             analyzer-driven domain pre-pruning before
                                          the solve (identical space, smaller solve)
                      --json              one-line atss.construct.v1 object instead
                                          of the human summary (export still goes
                                          through --format/--out)
    compare         Time several construction methods on one space
                      --workload <name> | --spec <file.json>
                      --methods <comma-separated labels>
                      --json              one-line atss.compare.v1 object
    tune            Run a simulated tuning session on a built-in workload
                      --workload <name>  --strategy <name>  --budget-ms <n>
                      --method <construction method>  --seed <n>
                      --eval-threads <n>  parallel evaluation fan-out (the run is
                                          identical for any thread count)
                      --construction-ms <n>  charge a fixed virtual construction
                                          time instead of the measured one
                                          (reproducible across invocations)
                      --json              one-line atss.tune.v1 object: best
                                          config + eval-pipeline metrics
                      --cache-dir <dir>   load the space from the cache (warm
                                          loads charge milliseconds, not seconds,
                                          to the tuning budget)
                      --mmap              zero-copy warm loads (with --cache-dir)
                      --daemon <socket>   resolve through a running space-server
                                          (warm serves charge the attach, not a
                                          solve; local fallback when unreachable)
    cache           Manage an ATSS space cache directory
                      cache ls     --cache-dir <dir>
                      cache info   --cache-dir <dir> --workload <n>|--spec <f> [--method <m>]
                                   [--mmap]  also time a zero-copy load of the entry
                      cache verify --cache-dir <dir> [--json]
                                   --json emits one JSON object per entry plus a
                                   summary line; damage is reported in-band
                      cache gc     --cache-dir <dir> --max-bytes <n> --max-entries <n>
                                   (entries pinned by a space-server are
                                   reported and never evicted)
    daemon          Run or control the resident space-server, atssd
                    (ATSD protocol v1 over a Unix domain socket; one daemon
                    owns the cache, dedupes concurrent builds, and hands
                    clients validated paths to mmap in O(header))
                      daemon run    --socket <path> --cache-dir <dir>
                                    [--pidfile <path>] [--max-bytes <n>]
                                    [--max-entries <n>]  (GC between builds;
                                    pinned entries are skipped)
                      daemon status --socket <path>   one-line
                                    atss.daemon-status.v1 JSON envelope
                      daemon stop   --socket <path>   drain builds, then exit
                      daemon ping   --socket <path>
    client          Talk to a running space-server
                      client resolve --socket <path> --workload <n>|--spec <f>
                                     [--method <m>] [--prune]
                                     get-or-build via the daemon, mmap-attach
                      client ping    --socket <path>
    trace-lint      Structurally validate a --trace export: top-level array,
                    required event fields, per-thread timestamp monotonicity
                      atss trace-lint <trace.json>
    capabilities    Print a machine-readable atss.capabilities.v1 JSON object
                    (methods, solvers, strategies, workloads, store features)
    spec-template   Print an example JSON space specification
    help            Show this message

OBSERVABILITY (construct, check, compare, tune, cache):
    --trace <file>   record spans across the whole pipeline (parse -> check ->
                     solve -> encode -> store -> eval, with per-thread solver
                     chunks and eval workers) and write a Chrome trace-event
                     JSON array; open it at https://ui.perfetto.dev
    --metrics        emit a one-line atss.metrics.v1 envelope: per-phase
                     timers, peak transient heap bytes, and the solver /
                     store / eval counters of the run. `tune --json` and
                     `construct/compare --json` embed it as `observability`;
                     everywhere else it is the last output line. Recording
                     never changes what the pipeline computes.

EXIT CODES (every subcommand):
    0   success
    1   any failure: bad flags, unknown names, I/O errors, or a failed
        construction / tuning run. Additionally, in human (non --json) mode:
        `check` exits 1 when an error-severity diagnostic is found,
        `cache verify` exits 1 when any entry is damaged, and `trace-lint`
        exits 1 on a malformed trace. With --json, findings are reported
        in-band and the exit code stays 0 unless the command itself fails.

Built-in workloads: dedispersion, expdist, hotspot, gemm, microhh,
prl-2x2, prl-4x4, prl-8x8.
"
    .to_string()
}

/// An example specification file.
pub fn spec_template() -> String {
    r#"{
  "name": "example",
  "parameters": [
    {"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64, 128, 256]},
    {"name": "block_size_y", "values": [1, 2, 4, 8, 16, 32]},
    {"name": "work_per_thread", "values": [1, 2, 4, 8]},
    {"name": "use_shared_memory", "values": [0, 1]}
  ],
  "restrictions": [
    "32 <= block_size_x * block_size_y <= 1024",
    "work_per_thread <= block_size_y",
    "use_shared_memory == 0 or block_size_x * work_per_thread * 4 <= 4096"
  ]
}
"#
    .to_string()
}

/// Resolve the search space specification selected by `--workload` or `--spec`.
pub(crate) fn resolve_spec(args: &ParsedArgs) -> Result<SearchSpaceSpec, CliError> {
    let span = at_obs::span("parse-spec", "parse");
    let spec = match (args.get("workload"), args.get("spec")) {
        (Some(name), None) => real_world_by_name(name).map(|w| w.spec).ok_or_else(|| {
            CliError::Run(format!(
                "unknown workload `{name}` (available: {})",
                real_world_names().join(", ")
            ))
        })?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
            spec_from_json(&text)
                .map_err(|e| CliError::Run(format!("cannot parse `{path}`: {e}")))?
        }
        (Some(_), Some(_)) => {
            return Err(CliError::Run(
                "pass either --workload or --spec, not both".to_string(),
            ))
        }
        (None, None) => {
            return Err(CliError::Run(
                "pass --workload <name> or --spec <file.json>".to_string(),
            ))
        }
    };
    drop(
        span.arg("params", spec.num_params() as u64)
            .arg("restrictions", spec.num_restrictions() as u64),
    );
    Ok(spec)
}

pub(crate) fn resolve_method(args: &ParsedArgs) -> Result<Method, CliError> {
    match args.get("method") {
        None => Ok(Method::Optimized),
        Some(label) => Method::from_label(label).ok_or_else(|| {
            CliError::Run(format!(
                "unknown method `{label}` (available: {})",
                Method::all()
                    .iter()
                    .map(|m| m.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }),
    }
}

/// `atss workloads`
pub fn workloads(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[])?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:>16} {:>8} {:>12} {:>18}",
        "name", "cartesian", "params", "constraints", "paper valid"
    )
    .expect("write to string");
    for w in all_real_world() {
        writeln!(
            out,
            "{:<14} {:>16} {:>8} {:>12} {:>18}",
            w.spec.name,
            w.spec.cartesian_size(),
            w.spec.num_params(),
            w.spec.num_restrictions(),
            w.paper.num_valid,
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "\nshort names for --workload: {}",
        real_world_names().join(", ")
    )
    .expect("write to string");
    Ok(out)
}

/// What [`obtain_space`] hands back: the space, the build report when
/// solving happened, the cache outcome + store when a cache was
/// involved (the store carries the metrics for the summary), and the
/// daemon reply when `--daemon` resolved the space through a running
/// space-server.
type ObtainedSpace = (
    SearchSpace,
    Option<BuildReport>,
    Option<(StoreOutcome, SpaceStore)>,
    Option<DaemonServed>,
);

/// Resolve the space for `spec`: through a running space-server when
/// `--daemon <socket>` is passed (transparently falling back to local
/// construction when it is unreachable), through a [`SpaceStore`] when
/// `--cache-dir` is (zero-copy when `--mmap` is), by plain construction
/// otherwise.
fn obtain_space(
    args: &ParsedArgs,
    spec: &SearchSpaceSpec,
    method: Method,
) -> Result<ObtainedSpace, CliError> {
    let options = BuildOptions {
        prune: args.switch("prune"),
        ..Default::default()
    };
    if let Some(socket) = args.get("daemon") {
        // The daemon path: ship the spec, wait through any build, attach
        // O(header). A dead or unreachable daemon must never fail a
        // tuner, so every error falls back to local construction with a
        // note on stderr.
        match try_daemon_obtain(socket, spec, method, options.prune) {
            Ok((space, served)) => return Ok((space, None, None, Some(served))),
            Err(e) => {
                eprintln!("atss: daemon at `{socket}` unavailable ({e}); constructing locally")
            }
        }
    }
    match args.get("cache-dir") {
        None => {
            if args.switch("mmap") {
                return Err(CliError::Run(
                    "--mmap loads from an ATSS cache; pass --cache-dir <dir> with it".to_string(),
                ));
            }
            let (space, report) = build_search_space_with(spec, method, options)
                .map_err(|e| CliError::Run(format!("construction failed: {e}")))?;
            Ok((space, Some(report), None, None))
        }
        Some(dir) => {
            let store = SpaceStore::new(dir)
                .map_err(|e| CliError::Run(format!("cache at `{dir}`: {e}")))?;
            let load = if args.switch("mmap") {
                LoadOptions::mmap_trusted()
            } else {
                LoadOptions::default()
            };
            let (space, outcome) = store
                .get_or_build_with_options(spec, method, options, load)
                .map_err(|e| CliError::Run(format!("cache at `{dir}`: {e}")))?;
            Ok((space, outcome.report.clone(), Some((outcome, store)), None))
        }
    }
}

/// Implicit analyzer run for `construct`/`tune`: findings go to stderr
/// and never block the command (use `atss check` for gating).
fn emit_check_warnings(spec: &SearchSpaceSpec) {
    let report = at_check::check_spec(spec);
    if !report.is_clean() {
        eprint!("{}", report.render());
    }
}

/// Render the `cache:` lines of the summary format.
fn cache_summary_lines(out: &mut String, outcome: &StoreOutcome, store: &SpaceStore) {
    let status = match &outcome.status {
        CacheStatus::Hit => format!("hit (warm load in {:.3?})", outcome.duration),
        CacheStatus::Miss => format!(
            "miss (constructed and persisted in {:.3?})",
            outcome.duration
        ),
        CacheStatus::Uncacheable(reason) => format!("uncacheable ({reason})"),
    };
    writeln!(out, "cache:                {status}").expect("write to string");
    if let Some(load) = &outcome.load {
        writeln!(out, "cache load:           {}", load.describe()).expect("write to string");
    }
    writeln!(
        out,
        "cache fingerprint:    {}",
        outcome
            .fingerprint
            .map_or_else(|| "-".to_string(), |fp| fp.to_hex())
    )
    .expect("write to string");
    match &outcome.path {
        Some(path) => writeln!(
            out,
            "cache file:           {} ({} bytes on disk)",
            path.display(),
            outcome.file_bytes
        )
        .expect("write to string"),
        None => writeln!(out, "cache file:           -").expect("write to string"),
    }
    writeln!(
        out,
        "cache stats:          {}",
        store.metrics().summary_line()
    )
    .expect("write to string");
}

/// How the space reached the command, as a stable label for the JSON
/// envelopes: `cold` (no cache), `miss`, `hit`, `hit-zero-copy`,
/// `uncacheable`, or `daemon-warm` / `daemon-validated` / `daemon-built`
/// / `daemon-coalesced` when a space-server resolved it.
fn cache_source_label(
    outcome: &Option<(StoreOutcome, SpaceStore)>,
    daemon: &Option<DaemonServed>,
) -> &'static str {
    if let Some(served) = daemon {
        return served.source_label();
    }
    match outcome {
        Some((o, _)) if o.status.is_hit() => {
            if o.load.as_ref().is_some_and(|l| l.is_zero_copy()) {
                "hit-zero-copy"
            } else {
                "hit"
            }
        }
        Some((o, _)) if matches!(o.status, CacheStatus::Miss) => "miss",
        Some(_) => "uncacheable",
        None => "cold",
    }
}

/// Splice a pre-rendered `atss.metrics.v1` envelope into a one-line JSON
/// object as its final `"observability"` field. Both sides are one-line
/// house-format JSON, so the textual composition is exact.
fn embed_observability(line: String, envelope: Option<&str>) -> String {
    match envelope {
        None => line,
        Some(env) => {
            let body = line.trim_end();
            let body = &body[..body.len() - 1];
            format!("{body},\"observability\":{env}}}\n")
        }
    }
}

/// Append the `atss.metrics.v1` envelope as the final output line (the
/// `--metrics` contract for human-format and JSONL commands).
pub(crate) fn append_metrics(mut out: String, envelope: Option<String>) -> String {
    if let Some(env) = envelope {
        if !out.is_empty() && !out.ends_with('\n') {
            out.push('\n');
        }
        out.push_str(&env);
        out.push('\n');
    }
    out
}

/// The `construct --json` DTO: one JSON object on one line, schema
/// `atss.construct.v1`.
fn construct_json_line(
    spec: &SearchSpaceSpec,
    method: Method,
    space: &SearchSpace,
    report: &Option<BuildReport>,
    outcome: &Option<(StoreOutcome, SpaceStore)>,
    daemon: &Option<DaemonServed>,
    envelope: Option<&str>,
) -> String {
    let mut doc = Json::obj();
    doc.push("schema", Json::Str("atss.construct.v1".to_string()));
    doc.push("space", Json::Str(spec.name.clone()));
    doc.push("method", Json::Str(method.label().to_string()));
    doc.push(
        "cartesian",
        Json::U64(u64::try_from(spec.cartesian_size()).unwrap_or(u64::MAX)),
    );
    doc.push("valid", Json::U64(space.len() as u64));
    doc.push(
        "construction_ms",
        match report {
            Some(r) => Json::F64(r.duration.as_secs_f64() * 1_000.0),
            None => Json::Null,
        },
    );
    doc.push(
        "constraint_checks",
        match report {
            Some(r) => Json::U64(r.stats.constraint_checks),
            None => Json::Null,
        },
    );
    doc.push(
        "arena_bytes",
        Json::U64((space.len() * space.num_params() * std::mem::size_of::<u32>()) as u64),
    );
    doc.push(
        "cache_source",
        Json::Str(cache_source_label(outcome, daemon).to_string()),
    );
    embed_observability(
        format!(
            "{doc}
"
        ),
        envelope,
    )
}

/// `atss construct`
pub fn construct(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[
        "workload",
        "spec",
        "method",
        "format",
        "out",
        "cache-dir",
        "daemon",
        "trace",
    ])?;
    let obs = ObsSession::begin(args);
    let spec = resolve_spec(args)?;
    emit_check_warnings(&spec);
    let method = resolve_method(args)?;
    let (space, report, outcome, served) = obtain_space(args, &spec, method)?;

    // The traced window is the pipeline itself (parse -> check -> lower ->
    // solve -> encode -> store); rendering and export are outside it.
    let mut sections: Vec<(&'static str, Json)> = Vec::new();
    if let Some(report) = &report {
        sections.push(("solve", solve_section(report)));
    }
    if let Some((_, store)) = &outcome {
        sections.push(("store", store_section(store.metrics())));
    }
    let envelope = obs.finish("construct", sections)?;

    let format = args.get("format").unwrap_or("summary");

    // Space-proportional exports going to a file stream through the
    // `io::Write` writers — the file never exists as one in-memory String.
    if let (Some(path), "csv" | "json") = (args.get("out"), format) {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}")))?;
        let mut out = std::io::BufWriter::new(file);
        let result = match format {
            "csv" => at_searchspace::write_csv(&space, &mut out),
            _ => at_searchspace::write_json_cache(&space, &mut out),
        }
        .and_then(|()| std::io::Write::flush(&mut out));
        result.map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}")))?;
        if args.switch("json") {
            return Ok(construct_json_line(
                &spec,
                method,
                &space,
                &report,
                &outcome,
                &served,
                envelope.as_deref(),
            ));
        }
        let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        return Ok(append_metrics(
            format!(
                "wrote {bytes} bytes ({} configurations) to {path}\n",
                space.len()
            ),
            envelope,
        ));
    }

    // Robot mode: the one-line envelope replaces the stdout rendering.
    if args.switch("json") {
        return Ok(construct_json_line(
            &spec,
            method,
            &space,
            &report,
            &outcome,
            &served,
            envelope.as_deref(),
        ));
    }

    let rendered = match format {
        "count" => format!("{}\n", space.len()),
        "csv" => to_csv(&space),
        "json" => to_json_cache(&space),
        "summary" => {
            let characteristics = SpaceCharacteristics::compute(&spec, &space);
            let mut out = String::new();
            writeln!(out, "space:                {}", spec.name).expect("write to string");
            writeln!(out, "method:               {}", method.label()).expect("write to string");
            match &report {
                Some(report) => {
                    writeln!(out, "construction time:    {:?}", report.duration)
                        .expect("write to string");
                }
                None => writeln!(out, "construction time:    none (cache hit)")
                    .expect("write to string"),
            }
            writeln!(out, "cartesian size:       {}", spec.cartesian_size())
                .expect("write to string");
            writeln!(out, "valid configurations: {}", space.len()).expect("write to string");
            writeln!(
                out,
                "valid fraction:       {:.3} %",
                characteristics.percent_valid
            )
            .expect("write to string");
            if let Some(report) = &report {
                writeln!(
                    out,
                    "constraints (as written / after lowering): {} / {}",
                    spec.num_restrictions(),
                    report.num_constraints
                )
                .expect("write to string");
                writeln!(
                    out,
                    "constraint checks:    {}",
                    report.stats.constraint_checks
                )
                .expect("write to string");
            }
            // The resolved arena footprint; construction streams solver
            // rows straight into it, so no decoded copy of the space is
            // ever held alongside.
            writeln!(
                out,
                "code arena:           {} bytes ({} configs x {} u32 codes)",
                space.len() * space.num_params() * std::mem::size_of::<u32>(),
                space.len(),
                space.num_params()
            )
            .expect("write to string");
            if let Some((outcome, store)) = &outcome {
                cache_summary_lines(&mut out, outcome, store);
            }
            if let Some(served) = &served {
                served.summary_lines(&mut out);
            }
            out
        }
        other => {
            return Err(CliError::Run(format!(
                "unknown format `{other}` (count, summary, csv, json)"
            )))
        }
    };

    match args.get("out") {
        None => Ok(append_metrics(rendered, envelope)),
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}")))?;
            Ok(append_metrics(
                format!(
                    "wrote {} bytes ({} configurations) to {path}\n",
                    rendered.len(),
                    space.len()
                ),
                envelope,
            ))
        }
    }
}

/// One JSONL line for `check --json`.
fn check_json_line(d: &at_check::Diagnostic) -> String {
    let restriction = match d.restriction {
        Some(i) => i.to_string(),
        None => "null".to_string(),
    };
    let span = match d.span {
        Some(s) => format!("{{\"start\":{},\"end\":{}}}", s.start, s.end),
        None => "null".to_string(),
    };
    let opt_str = |o: &Option<String>| match o {
        Some(s) => format!("\"{}\"", json_escape(s)),
        None => "null".to_string(),
    };
    format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"restriction\":{},\"source\":{},\"span\":{},\"help\":{}}}",
        d.code,
        d.severity().label(),
        json_escape(&d.message),
        restriction,
        opt_str(&d.source),
        span,
        opt_str(&d.help),
    )
}

/// `atss check`
pub fn check(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&["workload", "spec", "trace"])?;
    let obs = ObsSession::begin(args);
    let spec = resolve_spec(args)?;
    let report = at_check::check_spec(&spec);

    let mut section = Json::obj();
    section.push("restrictions", Json::U64(report.verdicts.len() as u64));
    section.push("errors", Json::U64(report.num_errors() as u64));
    section.push("warnings", Json::U64(report.num_warnings() as u64));
    section.push(
        "prunable_values",
        Json::U64(report.num_prunable_values() as u64),
    );
    let envelope = obs.finish("check", vec![("check", section)])?;

    if args.switch("json") {
        // Machine output mirrors `cache verify --json`: one object per
        // diagnostic plus a summary line, problems reported in-band so
        // every line stays parseable JSON — consumers check `errors`,
        // not the exit code.
        let mut out = String::new();
        for d in &report.diagnostics {
            writeln!(out, "{}", check_json_line(d)).expect("write to string");
        }
        writeln!(
            out,
            "{{\"schema\":\"atss.check.v1\",\"summary\":true,\"spec\":\"{}\",\"restrictions\":{},\"errors\":{},\"warnings\":{},\"prunable_values\":{}}}",
            json_escape(&report.spec_name),
            report.verdicts.len(),
            report.num_errors(),
            report.num_warnings(),
            report.num_prunable_values(),
        )
        .expect("write to string");
        return Ok(append_metrics(out, envelope));
    }
    // Human mode: error-severity findings fail the command (exit 1) so
    // the self-check gates can rely on the exit code.
    let rendered = report.render();
    if report.has_errors() {
        Err(CliError::Run(rendered))
    } else {
        Ok(append_metrics(rendered, envelope))
    }
}

/// `atss compare`
pub fn compare(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&["workload", "spec", "methods", "trace"])?;
    let obs = ObsSession::begin(args);
    let spec = resolve_spec(args)?;
    let methods: Vec<Method> = match args.get("methods") {
        None => vec![Method::Optimized, Method::ChainOfTrees, Method::Original],
        Some(list) => list
            .split(',')
            .map(|label| {
                Method::from_label(label.trim())
                    .ok_or_else(|| CliError::Run(format!("unknown method `{label}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let mut reports: Vec<BuildReport> = Vec::with_capacity(methods.len());
    let mut reference: Option<usize> = None;
    for method in &methods {
        let (space, report) = build_search_space(&spec, *method)
            .map_err(|e| CliError::Run(format!("{}: {e}", method.label())))?;
        if let Some(expected) = reference {
            if expected != space.len() {
                return Err(CliError::Run(format!(
                    "{} produced {} configurations, expected {expected}",
                    method.label(),
                    space.len()
                )));
            }
        } else {
            reference = Some(space.len());
        }
        reports.push(report);
    }

    let per_method: Vec<Json> = reports.iter().map(solve_section).collect();
    let envelope = obs.finish("compare", vec![("methods", Json::Arr(per_method.clone()))])?;

    if args.switch("json") {
        let mut doc = Json::obj();
        doc.push("schema", Json::Str("atss.compare.v1".to_string()));
        doc.push("space", Json::Str(spec.name.clone()));
        doc.push(
            "cartesian",
            Json::U64(u64::try_from(spec.cartesian_size()).unwrap_or(u64::MAX)),
        );
        doc.push("valid", Json::U64(reference.unwrap_or(0) as u64));
        doc.push("methods", Json::Arr(per_method));
        return Ok(embed_observability(
            format!(
                "{doc}
"
            ),
            envelope.as_deref(),
        ));
    }

    let mut out = String::new();
    writeln!(out, "space: {}", spec.name).expect("write to string");
    writeln!(
        out,
        "{:<20} {:>14} {:>12} {:>18}",
        "method", "time", "valid", "constraint checks"
    )
    .expect("write to string");
    for report in &reports {
        writeln!(
            out,
            "{:<20} {:>14} {:>12} {:>18}",
            report.method.label(),
            format!("{:.3?}", report.duration),
            report.num_valid,
            report.stats.constraint_checks
        )
        .expect("write to string");
    }
    Ok(append_metrics(out, envelope))
}

/// `atss tune`
pub fn tune(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[
        "workload",
        "strategy",
        "budget-ms",
        "method",
        "seed",
        "cache-dir",
        "daemon",
        "eval-threads",
        "construction-ms",
        "trace",
    ])?;
    let obs = ObsSession::begin(args);
    let name = args.require("workload")?;
    let workload = real_world_by_name(name)
        .ok_or_else(|| CliError::Run(format!("unknown workload `{name}`")))?;
    if !args.switch("json") {
        emit_check_warnings(&workload.spec);
    }
    let strategy_name = args.get("strategy").unwrap_or("random");
    let strategy = strategy_by_name(strategy_name)
        .ok_or_else(|| CliError::Run(format!("unknown strategy `{strategy_name}`")))?;
    let budget_ms: u64 = args
        .number("budget-ms", 30_000u64)
        .map_err(CliError::Args)?;
    let seed: u64 = args.number("seed", 42u64).map_err(CliError::Args)?;
    let eval_threads: usize = args
        .number("eval-threads", 1usize)
        .map_err(CliError::Args)?;
    if eval_threads == 0 {
        return Err(CliError::Run(
            "--eval-threads must be at least 1".to_string(),
        ));
    }
    let method = resolve_method(args)?;

    // The end-to-end loop accepts a pre-loaded space: with --cache-dir, a
    // warm load charges milliseconds (not a full construction) to the
    // virtual tuning budget — the production deployment the ROADMAP aims at.
    let (space, report, outcome, served) = obtain_space(args, &workload.spec, method)?;
    // --construction-ms overrides the measured construction time with a
    // fixed virtual charge, making whole runs reproducible across process
    // invocations (the tune-smoke gate diffs two of them).
    let construction: Duration = match args.get("construction-ms") {
        Some(_) => {
            let ms: u64 = args
                .number("construction-ms", 0u64)
                .map_err(CliError::Args)?;
            Duration::from_millis(ms)
        }
        None => match (&outcome, &served) {
            (Some((outcome, _)), _) => outcome.duration,
            // Daemon-served: the budget is charged what acquisition
            // actually cost this process — resolve (including any build
            // wait) plus the O(header) attach.
            (None, Some(s)) => s.resolve_time + s.attach_time,
            (None, None) => report.as_ref().expect("built without cache").duration,
        },
    };
    let model = performance_model_for(&workload.spec.name, &space, seed);
    let run = tune_with_options(
        &space,
        &model,
        strategy.as_ref(),
        Duration::from_millis(budget_ms),
        construction,
        seed,
        EvalOptions::with_threads(eval_threads),
    );

    let cache_source = cache_source_label(&outcome, &served);

    let mut sections: Vec<(&'static str, Json)> = Vec::new();
    if let Some(report) = &report {
        sections.push(("solve", solve_section(report)));
    }
    if let Some((_, store)) = &outcome {
        sections.push(("store", store_section(store.metrics())));
    }
    sections.push(("eval", eval_section(&run.metrics)));
    let envelope = obs.finish("tune", sections)?;

    if args.switch("json") {
        return Ok(tune_json_line(
            &workload.spec.name,
            method,
            seed,
            budget_ms,
            cache_source,
            &space,
            &run,
            envelope.as_deref(),
        ));
    }

    let mut out = String::new();
    writeln!(out, "workload:           {}", workload.spec.name).expect("write to string");
    let source = match cache_source {
        "hit-zero-copy" => " [cache hit, zero-copy]",
        "hit" => " [cache hit]",
        "miss" => " [cache miss]",
        "daemon-warm" => " [daemon, warm]",
        "daemon-validated" => " [daemon, validated]",
        "daemon-built" => " [daemon, built]",
        "daemon-coalesced" => " [daemon, coalesced]",
        _ => "",
    };
    writeln!(
        out,
        "construction:       {} ({:?}){}",
        method.label(),
        construction,
        source
    )
    .expect("write to string");
    writeln!(out, "strategy:           {}", run.strategy).expect("write to string");
    writeln!(out, "budget:             {budget_ms} ms (virtual)").expect("write to string");
    writeln!(out, "eval threads:       {}", run.metrics.threads).expect("write to string");
    writeln!(out, "evaluations:        {}", run.num_evaluations()).expect("write to string");
    writeln!(out, "eval pipeline:      {}", run.metrics.summary_line()).expect("write to string");
    if run.metrics.rejected > 0 {
        writeln!(
            out,
            "rejected proposals: {} (ids outside the space)",
            run.metrics.rejected
        )
        .expect("write to string");
    }
    match run.best_evaluation() {
        Some(best) => {
            writeln!(
                out,
                "best runtime:       {:.3} ms (simulated)",
                best.runtime_ms
            )
            .expect("write to string");
            let rendered = space
                .view(best.config_index)
                .map(|v| {
                    v.to_vec()
                        .iter()
                        .zip(space.params())
                        .map(|(value, p)| format!("{}={}", p.name(), value))
                        .collect::<Vec<_>>()
                        .join(", ")
                })
                .unwrap_or_default();
            writeln!(
                out,
                "best configuration: #{} ({rendered})",
                best.config_index.index()
            )
            .expect("write to string");
        }
        None => writeln!(
            out,
            "best runtime:       none (budget exhausted by construction)"
        )
        .expect("write to string"),
    }
    Ok(append_metrics(out, envelope))
}

/// Render a parameter [`Value`](at_searchspace::prelude::Value) as JSON.
fn value_to_json(v: &at_searchspace::prelude::Value) -> String {
    use at_searchspace::prelude::Value;
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) if f.is_finite() => f.to_string(),
        Value::Float(_) => "null".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Str(s) => format!("\"{}\"", json_escape(s)),
    }
}

/// The `tune --json` DTO: one JSON object on one line, schema `atss.tune.v1`.
/// Everything a robot consumer needs is in-band; for a fixed seed and
/// construction charge the object is identical across `--eval-threads`
/// values except for the `threads`/`fanout_*` metrics fields. When
/// `--metrics` is also passed, the `atss.metrics.v1` envelope rides along
/// as the final `observability` field (and only then — without it the
/// object carries no wall-clock-dependent keys beyond `total_ms`).
#[allow(clippy::too_many_arguments)]
fn tune_json_line(
    workload: &str,
    method: Method,
    seed: u64,
    budget_ms: u64,
    cache_source: &str,
    space: &SearchSpace,
    run: &TuningRun,
    envelope: Option<&str>,
) -> String {
    let m = &run.metrics;
    let (best_runtime, best_id, best_config) = match run.best_evaluation() {
        Some(best) => {
            let config = space
                .view(best.config_index)
                .map(|view| {
                    let fields: Vec<String> = view
                        .to_vec()
                        .iter()
                        .zip(space.params())
                        .map(|(value, p)| {
                            format!("\"{}\":{}", json_escape(p.name()), value_to_json(value))
                        })
                        .collect();
                    format!("{{{}}}", fields.join(","))
                })
                .unwrap_or_else(|| "null".to_string());
            (
                best.runtime_ms.to_string(),
                best.config_index.index().to_string(),
                config,
            )
        }
        None => ("null".into(), "null".into(), "null".into()),
    };
    let line = format!(
        "{{\"schema\":\"atss.tune.v1\",\"workload\":\"{}\",\"strategy\":\"{}\",\
         \"method\":\"{}\",\"seed\":{seed},\"budget_ms\":{budget_ms},\
         \"construction_ms\":{},\"total_ms\":{},\"evaluations\":{},\
         \"best_runtime_ms\":{best_runtime},\"best_config_id\":{best_id},\
         \"best_config\":{best_config},\"cache_source\":\"{cache_source}\",\
         \"metrics\":{{\"batches\":{},\"proposed\":{},\"measured\":{},\
         \"cache_hits\":{},\"deduped\":{},\"rejected\":{},\"out_of_budget\":{},\
         \"largest_batch\":{},\"threads\":{},\"fanout_batches\":{},\
         \"fanout_thread_slots\":{},\"cache_hit_ratio\":{},\"dedup_ratio\":{},\
         \"fanout_utilization\":{}}}}}\n",
        json_escape(workload),
        json_escape(&run.strategy),
        method.label(),
        run.construction_ms,
        run.total_ms,
        run.num_evaluations(),
        m.batches,
        m.proposed,
        m.measured,
        m.cache_hits,
        m.deduped,
        m.rejected,
        m.out_of_budget,
        m.largest_batch,
        m.threads,
        m.fanout_batches,
        m.fanout_thread_slots,
        m.cache_hit_ratio(),
        m.dedup_ratio(),
        m.fanout_utilization(),
    );
    embed_observability(line, envelope)
}

/// `atss capabilities`: machine-readable introspection of what this build
/// supports — one JSON object, schema `atss.capabilities.v1`. Robots use it
/// to discover methods, solvers, strategies, workloads, store features and
/// which commands speak `--json` without parsing help text.
pub fn capabilities(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[])?;
    let quote_list = |items: &[&str]| {
        items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",")
    };
    let methods: Vec<&str> = Method::all().iter().map(|m| m.label()).collect();
    let diagnostics = at_check::Code::ALL
        .iter()
        .map(|c| {
            format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\"}}",
                c.as_str(),
                c.severity().label()
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    Ok(format!(
        "{{\"schema\":\"atss.capabilities.v1\",\"name\":\"atss\",\"version\":\"{}\",\
         \"commands\":[{}],\"methods\":[{}],\"solvers\":[{}],\"strategies\":[{}],\
         \"workloads\":[{}],\"neighbor_methods\":[{}],\
         \"eval\":{{\"backends\":[\"performance-model\"],\"batched\":true,\
         \"threads_flag\":\"--eval-threads\"}},\
         \"store\":{{\"format_version\":{},\"min_read_version\":{},\"features\":[{}]}},\
         \"daemon\":{{\"protocol\":\"ATSD\",\"protocol_version\":{},\
         \"socket_flag\":\"--daemon\",\"subcommands\":[{}],\
         \"client_subcommands\":[{}],\
         \"status_schema\":\"atss.daemon-status.v1\"}},\
         \"check\":{{\"diagnostics\":[{diagnostics}]}},\
         \"observability\":{{\"trace_flag\":\"--trace\",\"metrics_flag\":\"--metrics\",\
         \"trace_format\":\"chrome-trace-event\",\"metrics_schema\":\"atss.metrics.v1\",\
         \"commands\":[{}]}},\
         \"schemas\":[{}],\
         \"json_commands\":[{}]}}\n",
        env!("CARGO_PKG_VERSION"),
        quote_list(&[
            "workloads",
            "check",
            "construct",
            "compare",
            "tune",
            "cache",
            "trace-lint",
            "daemon",
            "client",
            "capabilities",
            "spec-template",
            "help",
        ]),
        quote_list(&methods),
        quote_list(&[
            "brute-force",
            "original",
            "optimized",
            "parallel",
            "blocking-clause",
        ]),
        quote_list(all_strategy_names()),
        quote_list(real_world_names()),
        quote_list(&["hamming", "adjacent", "strictly-adjacent"]),
        at_store::FORMAT_VERSION,
        at_store::MIN_READ_VERSION,
        quote_list(&[
            "content-addressed-cache",
            "mmap-zero-copy",
            "persisted-index",
            "crc-framing",
            "verify",
            "gc",
            "entry-pinning",
        ]),
        at_daemon::PROTOCOL_VERSION,
        quote_list(&["run", "status", "stop", "ping"]),
        quote_list(&["resolve", "ping"]),
        quote_list(&["construct", "check", "compare", "tune", "cache"]),
        quote_list(&[
            "atss.capabilities.v1",
            "atss.construct.v1",
            "atss.compare.v1",
            "atss.check.v1",
            "atss.tune.v1",
            "atss.cache-verify.v1",
            "atss.daemon-status.v1",
            "atss.metrics.v1",
        ]),
        quote_list(&[
            "check",
            "construct",
            "compare",
            "cache verify",
            "tune",
            "capabilities",
        ]),
    ))
}

/// Open the store named by the required `--cache-dir` flag.
fn resolve_store(args: &ParsedArgs) -> Result<SpaceStore, CliError> {
    let dir = args.require("cache-dir")?;
    SpaceStore::new(dir).map_err(|e| CliError::Run(format!("cache at `{dir}`: {e}")))
}

/// `atss cache <ls|info|verify|gc>`
pub fn cache(args: &ParsedArgs) -> Result<String, CliError> {
    let action = args.positional.first().map(|s| s.as_str()).ok_or_else(|| {
        CliError::Run("usage: atss cache <ls|info|verify|gc> --cache-dir <dir>".to_string())
    })?;
    let obs = ObsSession::begin(args);
    let (out, store, command) = match action {
        "ls" => {
            let (out, store) = cache_ls(args)?;
            (out, store, "cache ls")
        }
        "info" => {
            let (out, store) = cache_info(args)?;
            (out, store, "cache info")
        }
        "verify" => {
            let (out, store) = cache_verify(args)?;
            (out, store, "cache verify")
        }
        "gc" => {
            let (out, store) = cache_gc(args)?;
            (out, store, "cache gc")
        }
        other => {
            return Err(CliError::Run(format!(
                "unknown cache action `{other}` (ls, info, verify, gc)"
            )))
        }
    };
    let envelope = obs.finish(command, vec![("store", store_section(store.metrics()))])?;
    Ok(append_metrics(out, envelope))
}

fn cache_ls(args: &ParsedArgs) -> Result<(String, SpaceStore), CliError> {
    args.ensure_known_flags(&["cache-dir", "trace"])?;
    let store = resolve_store(args)?;
    let entries = store.entries().map_err(|e| CliError::Run(e.to_string()))?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<32} {:<16} {:>10} {:>8} {:>12} {:>4} {:>5}",
        "fingerprint", "space", "configs", "params", "bytes", "ver", "idx"
    )
    .expect("write to string");
    let mut total: u64 = 0;
    for entry in &entries {
        let (name, rows, params, version, idx) = match &entry.info {
            Some(info) => (
                info.name.clone(),
                info.num_rows.to_string(),
                info.num_params.to_string(),
                info.version.to_string(),
                match info.index {
                    Some(_) => "yes".to_string(),
                    None => "no".to_string(),
                },
            ),
            None => (
                "<unreadable>".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ),
        };
        writeln!(
            out,
            "{:<32} {:<16} {:>10} {:>8} {:>12} {:>4} {:>5}",
            entry.fingerprint.to_hex(),
            name,
            rows,
            params,
            entry.bytes,
            version,
            idx
        )
        .expect("write to string");
        total += entry.bytes;
    }
    writeln!(out, "\n{} entries, {} bytes", entries.len(), total).expect("write to string");
    Ok((out, store))
}

fn cache_info(args: &ParsedArgs) -> Result<(String, SpaceStore), CliError> {
    args.ensure_known_flags(&["cache-dir", "workload", "spec", "method", "trace"])?;
    let store = resolve_store(args)?;
    let spec = resolve_spec(args)?;
    let method = resolve_method(args)?;
    let lowering = method.default_lowering();
    let fingerprint =
        SpecFingerprint::compute(&spec, lowering).map_err(|e| CliError::Run(e.to_string()))?;
    let path = store.path_for(&fingerprint);

    let mut out = String::new();
    writeln!(out, "space:        {}", spec.name).expect("write to string");
    writeln!(out, "method:       {}", method.label()).expect("write to string");
    writeln!(out, "fingerprint:  {}", fingerprint.to_hex()).expect("write to string");
    writeln!(out, "entry:        {}", path.display()).expect("write to string");
    // Pins are per-process (a space-server pins entries it has handed
    // out); in a one-shot CLI invocation this is almost always "no",
    // but the line keeps the daemon's `status` and this view congruent.
    writeln!(
        out,
        "pinned:       {}",
        if store.is_pinned(&fingerprint) {
            "yes (gc will skip this entry)"
        } else {
            "no"
        }
    )
    .expect("write to string");
    if path.exists() {
        match at_store::peek_info(&path) {
            Ok(info) => {
                writeln!(out, "cached:       yes (format v{})", info.version)
                    .expect("write to string");
                writeln!(
                    out,
                    "contents:     {} configs x {} params, {} bytes on disk",
                    info.num_rows, info.num_params, info.file_bytes
                )
                .expect("write to string");
                match info.index {
                    Some(idx) => writeln!(
                        out,
                        "index:        persisted ({} slots, row-hash v{})",
                        idx.num_slots, idx.hash_version
                    )
                    .expect("write to string"),
                    None => writeln!(out, "index:        none (rebuilt on every load)")
                        .expect("write to string"),
                }
                if args.switch("mmap") {
                    let start = std::time::Instant::now();
                    let loaded = at_store::load_space_from_path(&path, LoadOptions::mmap_trusted())
                        .map_err(|e| CliError::Run(e.to_string()))?;
                    writeln!(
                        out,
                        "mmap load:    {} configs in {:.3?} ({})",
                        loaded.space.len(),
                        start.elapsed(),
                        loaded.report.describe()
                    )
                    .expect("write to string");
                    // An index fallback means the persisted index was
                    // rejected and silently repaired by an in-memory
                    // rebuild — surface it so operators know the entry
                    // is worth re-writing.
                    if let Some(reason) = loaded.report.index_fallback() {
                        writeln!(
                            out,
                            "index repair: persisted index rejected ({reason}); rebuilt in memory"
                        )
                        .expect("write to string");
                    }
                }
            }
            Err(e) => {
                writeln!(out, "cached:       damaged ({e})").expect("write to string");
            }
        }
    } else {
        writeln!(out, "cached:       no").expect("write to string");
    }
    Ok((out, store))
}

/// Escape a string for inclusion in a JSON string literal. The `--json`
/// output only ever quotes hex fingerprints, file paths, and error
/// messages, but paths and messages can contain anything.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSONL line for `cache verify --json`.
fn verify_json_line(entry: &StoreEntry, error: Option<&StoreError>) -> String {
    let rows = match &entry.info {
        Some(info) => info.num_rows.to_string(),
        None => "null".to_string(),
    };
    let error_field = match error {
        Some(e) => format!("\"{}\"", json_escape(&e.to_string())),
        None => "null".to_string(),
    };
    format!(
        "{{\"fingerprint\":\"{}\",\"path\":\"{}\",\"bytes\":{},\"rows\":{},\"status\":\"{}\",\"error\":{}}}",
        json_escape(&entry.fingerprint.to_hex()),
        json_escape(&entry.path.display().to_string()),
        entry.bytes,
        rows,
        if error.is_none() { "ok" } else { "damaged" },
        error_field,
    )
}

fn cache_verify(args: &ParsedArgs) -> Result<(String, SpaceStore), CliError> {
    args.ensure_known_flags(&["cache-dir", "trace"])?;
    let store = resolve_store(args)?;
    let results = store.verify().map_err(|e| CliError::Run(e.to_string()))?;
    if args.switch("json") {
        // Machine output: one object per entry, then a summary object.
        // Damage is reported in-band (status/error fields and the summary
        // count) so every line stays parseable JSON; consumers check
        // `damaged`, not the exit code.
        let mut out = String::new();
        let damaged = results.iter().filter(|(_, e)| e.is_some()).count();
        for (entry, error) in &results {
            writeln!(out, "{}", verify_json_line(entry, error.as_ref())).expect("write to string");
        }
        writeln!(
            out,
            "{{\"schema\":\"atss.cache-verify.v1\",\"summary\":true,\"checked\":{},\"damaged\":{damaged}}}",
            results.len()
        )
        .expect("write to string");
        return Ok((out, store));
    }
    let mut out = String::new();
    let mut damaged = 0usize;
    for (entry, error) in &results {
        match error {
            None => writeln!(out, "OK      {}", entry.fingerprint.to_hex()),
            Some(e) => {
                damaged += 1;
                writeln!(out, "DAMAGED {}: {e}", entry.fingerprint.to_hex())
            }
        }
        .expect("write to string");
    }
    if damaged > 0 {
        return Err(CliError::Run(format!(
            "{out}{damaged} of {} cache entries are damaged (a rebuild will repair them on \
             next use, or `cache gc` can evict them)",
            results.len()
        )));
    }
    writeln!(out, "all {} entries verified", results.len()).expect("write to string");
    Ok((out, store))
}

fn cache_gc(args: &ParsedArgs) -> Result<(String, SpaceStore), CliError> {
    args.ensure_known_flags(&["cache-dir", "max-bytes", "max-entries", "trace"])?;
    let store = resolve_store(args)?;
    let max_bytes: u64 = args.number("max-bytes", u64::MAX).map_err(CliError::Args)?;
    let max_entries: usize = args
        .number("max-entries", usize::MAX)
        .map_err(CliError::Args)?;
    let report = store
        .gc_with(GcOptions {
            max_bytes,
            max_entries,
        })
        .map_err(|e| CliError::Run(e.to_string()))?;
    // The summary line carries the store's lifetime counters — including
    // the gc evictions this run just performed.
    let out = format!(
        "evicted {} entries ({} -> {} bytes), {} kept, {} pinned (skipped)\ncache stats: {}\n",
        report.evicted,
        report.bytes_before,
        report.bytes_after,
        report.kept,
        report.pinned_skipped,
        store.metrics().summary_line()
    );
    Ok((out, store))
}

/// `atss trace-lint <file>`: structural validation of a `--trace` export.
///
/// Checks the contract the Chrome trace-event exporter promises (and the
/// obs-smoke gate and schema tests rely on): the file is a JSON array;
/// every event carries `ph`/`pid`/`tid`/`name`; complete events (`X`)
/// carry `cat`, a numeric `ts` and `dur`, with `ts` monotonically
/// non-decreasing per thread; instants (`i`) carry thread scope
/// (`"s":"t"`); metadata (`M`) events carry an `args.name`, and exactly
/// the process itself is named. Exit code 1 on any violation.
pub fn trace_lint(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[])?;
    let path = args
        .positional
        .first()
        .ok_or_else(|| CliError::Run("usage: atss trace-lint <trace.json>".to_string()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
    let doc: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| CliError::Run(format!("trace-lint: `{path}` is not valid JSON: {e}")))?;
    let events = doc
        .as_array()
        .ok_or_else(|| CliError::Run("trace-lint: top level must be a JSON array".to_string()))?;

    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut metadata = 0usize;
    let mut process_named = false;
    let mut threads = std::collections::BTreeSet::new();
    let mut last_ts: std::collections::BTreeMap<i64, f64> = std::collections::BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event
                .get(key)
                .ok_or_else(|| CliError::Run(format!("trace-lint: event {i}: missing `{key}`")))
        };
        let str_field = |key: &str| {
            field(key)?.as_str().map(str::to_string).ok_or_else(|| {
                CliError::Run(format!("trace-lint: event {i}: `{key}` must be a string"))
            })
        };
        let num_field = |key: &str| {
            field(key)?.as_f64().ok_or_else(|| {
                CliError::Run(format!("trace-lint: event {i}: `{key}` must be a number"))
            })
        };
        let ph = str_field("ph")?;
        let name = str_field("name")?;
        field("pid")?;
        let tid = field("tid")?.as_i64().ok_or_else(|| {
            CliError::Run(format!("trace-lint: event {i}: `tid` must be an integer"))
        })?;
        match ph.as_str() {
            "M" => {
                metadata += 1;
                let labeled = event.get("args").and_then(|a| a.get("name"));
                if labeled.and_then(|n| n.as_str()).is_none() {
                    return Err(CliError::Run(format!(
                        "trace-lint: event {i}: metadata without args.name"
                    )));
                }
                if name == "process_name" {
                    process_named = true;
                }
            }
            "X" => {
                spans += 1;
                threads.insert(tid);
                str_field("cat")?;
                let ts = num_field("ts")?;
                num_field("dur")?;
                if let Some(prev) = last_ts.get(&tid) {
                    if ts < *prev {
                        return Err(CliError::Run(format!(
                            "trace-lint: event {i}: timestamps not monotone on tid {tid} \
                             ({ts} after {prev})"
                        )));
                    }
                }
                last_ts.insert(tid, ts);
            }
            "i" => {
                instants += 1;
                threads.insert(tid);
                str_field("cat")?;
                num_field("ts")?;
                if str_field("s")? != "t" {
                    return Err(CliError::Run(format!(
                        "trace-lint: event {i}: instant without thread scope"
                    )));
                }
            }
            other => {
                return Err(CliError::Run(format!(
                    "trace-lint: event {i}: unknown phase `{other}`"
                )))
            }
        }
    }
    if !process_named {
        return Err(CliError::Run(
            "trace-lint: no process_name metadata event".to_string(),
        ));
    }
    Ok(format!(
        "trace OK: {path}: {} events ({spans} spans, {instants} instants, {metadata} metadata) \
         across {} thread(s)\n",
        events.len(),
        threads.len().max(1)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn parsed(args: &[&str]) -> ParsedArgs {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn resolve_spec_requires_a_source() {
        assert!(resolve_spec(&parsed(&["construct"])).is_err());
        assert!(resolve_spec(&parsed(&[
            "construct",
            "--workload",
            "gemm",
            "--spec",
            "x.json"
        ]))
        .is_err());
        let spec = resolve_spec(&parsed(&["construct", "--workload", "gemm"])).unwrap();
        assert_eq!(spec.name, "GEMM");
    }

    #[test]
    fn resolve_spec_reads_files() {
        let dir = std::env::temp_dir().join("at-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.json");
        std::fs::write(&path, spec_template()).unwrap();
        let spec = resolve_spec(&parsed(&["construct", "--spec", path.to_str().unwrap()])).unwrap();
        assert_eq!(spec.name, "example");
        assert!(resolve_spec(&parsed(&["construct", "--spec", "/no/such/file.json"])).is_err());
    }

    #[test]
    fn resolve_method_defaults_to_optimized() {
        assert_eq!(
            resolve_method(&parsed(&["construct"])).unwrap(),
            Method::Optimized
        );
        assert_eq!(
            resolve_method(&parsed(&["construct", "--method", "chain-of-trees"])).unwrap(),
            Method::ChainOfTrees
        );
        assert!(resolve_method(&parsed(&["construct", "--method", "nope"])).is_err());
    }

    #[test]
    fn construct_csv_and_count_formats() {
        let count = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "count",
        ]))
        .unwrap();
        let n: usize = count.trim().parse().unwrap();
        assert!(n > 1000);
        let csv = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        assert_eq!(csv.lines().count(), n + 1); // header + one line per config
        assert!(csv.lines().next().unwrap().contains("block_size_x"));
    }

    #[test]
    fn construct_writes_output_files() {
        let dir = std::env::temp_dir().join("at-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dedispersion.json");
        let msg = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "json",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("configurations"));
    }

    #[test]
    fn compare_rejects_unknown_methods() {
        assert!(compare(&parsed(&[
            "compare",
            "--workload",
            "dedispersion",
            "--methods",
            "optimized,warp-drive"
        ]))
        .is_err());
    }

    #[test]
    fn unknown_flag_is_caught_per_command() {
        assert!(construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--formt",
            "count"
        ]))
        .is_err());
    }

    fn fresh_cache_dir(tag: &str) -> String {
        let dir = std::env::temp_dir().join(format!("at-cli-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn construct_with_cache_dir_misses_then_hits() {
        let dir = fresh_cache_dir("construct");
        let cold = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        assert!(cold.contains("cache:"), "{cold}");
        assert!(cold.contains("miss"), "{cold}");
        assert!(cold.contains("cache fingerprint:"), "{cold}");

        let warm = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        assert!(warm.contains("hit"), "{warm}");
        assert!(warm.contains("bytes on disk"), "{warm}");

        // The served space is identical either way.
        let direct = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        let cached = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        assert_eq!(direct, cached);
    }

    #[test]
    fn cache_subcommands_cover_the_lifecycle() {
        let dir = fresh_cache_dir("lifecycle");
        construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();

        let ls = cache(&parsed(&["cache", "ls", "--cache-dir", &dir])).unwrap();
        assert!(ls.contains("Dedispersion"), "{ls}");
        assert!(ls.contains("1 entries"), "{ls}");

        let info = cache(&parsed(&[
            "cache",
            "info",
            "--cache-dir",
            &dir,
            "--workload",
            "dedispersion",
        ]))
        .unwrap();
        assert!(info.contains("cached:       yes"), "{info}");

        let verify = cache(&parsed(&["cache", "verify", "--cache-dir", &dir])).unwrap();
        assert!(verify.contains("all 1 entries verified"), "{verify}");

        let gc = cache(&parsed(&[
            "cache",
            "gc",
            "--cache-dir",
            &dir,
            "--max-bytes",
            "0",
        ]))
        .unwrap();
        assert!(gc.contains("evicted 1"), "{gc}");
        let ls = cache(&parsed(&["cache", "ls", "--cache-dir", &dir])).unwrap();
        assert!(ls.contains("0 entries"), "{ls}");
    }

    /// `cache verify --json` must emit one parseable JSON object per entry
    /// with the documented fields, plus a trailing summary object — for
    /// both clean and damaged caches (damage is reported in-band so every
    /// line stays valid JSONL).
    #[test]
    fn cache_verify_json_schema() {
        let dir = fresh_cache_dir("verify-json");
        construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();

        let check_schema = |output: &str, status: &str, has_error: bool| {
            let lines: Vec<&str> = output.lines().collect();
            assert_eq!(lines.len(), 2, "one entry + summary: {output}");
            let entry: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
            let fp = entry.get("fingerprint").unwrap().as_str().unwrap();
            assert_eq!(fp.len(), 32, "fingerprint is 32 hex chars: {fp}");
            let path = entry.get("path").unwrap().as_str().unwrap();
            assert!(path.ends_with(".atss"), "{path}");
            assert!(entry.get("bytes").unwrap().as_i64().unwrap() > 0);
            assert!(entry.get("rows").unwrap().as_i64().unwrap() > 0);
            assert_eq!(entry.get("status").unwrap().as_str().unwrap(), status);
            let error = entry.get("error").unwrap();
            assert_eq!(error.as_str().is_some(), has_error, "{error:?}");
            let summary: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
            assert_eq!(summary.get("checked").unwrap().as_i64().unwrap(), 1);
            assert_eq!(
                summary.get("damaged").unwrap().as_i64().unwrap(),
                i64::from(has_error)
            );
        };

        let clean = cache(&parsed(&["cache", "verify", "--cache-dir", &dir, "--json"])).unwrap();
        check_schema(&clean, "ok", false);

        // Damage the arena; the entry must flip to "damaged" with the
        // store error quoted, while the output stays line-by-line JSON.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&entry, &bytes).unwrap();
        let damaged = cache(&parsed(&["cache", "verify", "--cache-dir", &dir, "--json"])).unwrap();
        check_schema(&damaged, "damaged", true);
    }

    #[test]
    fn cache_verify_flags_damage() {
        let dir = fresh_cache_dir("verify-damage");
        construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        // Damage the single entry.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let mut bytes = std::fs::read(&entry).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&entry, &bytes).unwrap();
        let err = cache(&parsed(&["cache", "verify", "--cache-dir", &dir])).unwrap_err();
        assert!(err.to_string().contains("DAMAGED"), "{err}");
    }

    #[test]
    fn cache_requires_an_action_and_a_dir() {
        assert!(cache(&parsed(&["cache"])).is_err());
        assert!(cache(&parsed(&["cache", "frob", "--cache-dir", "/tmp/x"])).is_err());
        assert!(cache(&parsed(&["cache", "ls"])).is_err());
    }

    #[test]
    fn tune_json_schema() {
        let out = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--strategy",
            "genetic",
            "--budget-ms",
            "2000",
            "--seed",
            "7",
            "--construction-ms",
            "0",
            "--json",
        ]))
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), "atss.tune.v1");
        assert_eq!(
            doc.get("workload").unwrap().as_str().unwrap(),
            "Dedispersion"
        );
        assert_eq!(
            doc.get("strategy").unwrap().as_str().unwrap(),
            "genetic-algorithm"
        );
        assert_eq!(doc.get("seed").unwrap().as_i64().unwrap(), 7);
        assert_eq!(doc.get("budget_ms").unwrap().as_i64().unwrap(), 2000);
        assert_eq!(doc.get("construction_ms").unwrap().as_f64().unwrap(), 0.0);
        assert!(doc.get("evaluations").unwrap().as_i64().unwrap() > 0);
        assert!(doc.get("best_runtime_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("best_config_id").unwrap().as_i64().unwrap() >= 0);
        let config = doc.get("best_config").unwrap().as_object().unwrap();
        assert!(
            config.iter().any(|(k, _)| k == "block_size_x"),
            "{config:?}"
        );
        assert_eq!(doc.get("cache_source").unwrap().as_str().unwrap(), "cold");
        let metrics = doc.get("metrics").unwrap();
        for field in [
            "batches",
            "proposed",
            "measured",
            "cache_hits",
            "deduped",
            "rejected",
            "out_of_budget",
            "largest_batch",
            "threads",
            "fanout_batches",
            "fanout_thread_slots",
            "cache_hit_ratio",
            "dedup_ratio",
            "fanout_utilization",
        ] {
            assert!(metrics.get(field).is_some(), "missing metrics.{field}");
        }
        assert_eq!(metrics.get("rejected").unwrap().as_i64().unwrap(), 0);
        assert_eq!(metrics.get("threads").unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn tune_json_is_identical_across_eval_threads() {
        let run_with = |threads: &str| {
            tune(&parsed(&[
                "tune",
                "--workload",
                "dedispersion",
                "--strategy",
                "particle-swarm",
                "--budget-ms",
                "3000",
                "--seed",
                "13",
                "--construction-ms",
                "0",
                "--eval-threads",
                threads,
                "--json",
            ]))
            .unwrap()
        };
        let serial: serde_json::Value = serde_json::from_str(run_with("1").trim()).unwrap();
        let parallel: serde_json::Value = serde_json::from_str(run_with("4").trim()).unwrap();
        for field in [
            "evaluations",
            "best_runtime_ms",
            "best_config_id",
            "best_config",
            "total_ms",
        ] {
            assert_eq!(serial.get(field), parallel.get(field), "{field}");
        }
        // The work counters match too; only the fan-out bookkeeping differs.
        for field in ["proposed", "measured", "cache_hits", "deduped", "rejected"] {
            assert_eq!(
                serial.get("metrics").unwrap().get(field),
                parallel.get("metrics").unwrap().get(field),
                "metrics.{field}"
            );
        }
    }

    #[test]
    fn tune_rejects_zero_eval_threads() {
        let err = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--eval-threads",
            "0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("eval-threads"), "{err}");
    }

    #[test]
    fn tune_human_summary_reports_the_eval_pipeline() {
        let out = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--strategy",
            "genetic",
            "--budget-ms",
            "2000",
            "--seed",
            "3",
            "--eval-threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("eval threads:       2"), "{out}");
        assert!(out.contains("eval pipeline:"), "{out}");
        assert!(out.contains("best configuration: #"), "{out}");
    }

    #[test]
    fn capabilities_json_schema() {
        let out = capabilities(&parsed(&["capabilities"])).unwrap();
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "atss.capabilities.v1"
        );
        assert_eq!(doc.get("methods").unwrap().as_array().unwrap().len(), 6);
        assert_eq!(doc.get("solvers").unwrap().as_array().unwrap().len(), 5);
        let strategies = doc.get("strategies").unwrap().as_array().unwrap();
        assert!(strategies.iter().any(|s| s.as_str() == Some("genetic")));
        assert_eq!(doc.get("workloads").unwrap().as_array().unwrap().len(), 8);
        let store = doc.get("store").unwrap();
        assert_eq!(
            store.get("format_version").unwrap().as_i64().unwrap(),
            i64::from(at_store::FORMAT_VERSION)
        );
        let diags = doc
            .get("check")
            .unwrap()
            .get("diagnostics")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(diags.len(), at_check::Code::ALL.len());
        assert_eq!(
            doc.get("eval")
                .unwrap()
                .get("threads_flag")
                .unwrap()
                .as_str()
                .unwrap(),
            "--eval-threads"
        );
        let json_commands = doc.get("json_commands").unwrap().as_array().unwrap();
        assert!(json_commands.iter().any(|c| c.as_str() == Some("tune")));
        assert!(json_commands
            .iter()
            .any(|c| c.as_str() == Some("construct")));
        assert!(json_commands.iter().any(|c| c.as_str() == Some("compare")));
        let obs = doc.get("observability").unwrap();
        assert_eq!(obs.get("trace_flag").unwrap().as_str(), Some("--trace"));
        assert_eq!(
            obs.get("metrics_schema").unwrap().as_str(),
            Some("atss.metrics.v1")
        );
        let schemas = doc.get("schemas").unwrap().as_array().unwrap();
        assert!(schemas
            .iter()
            .any(|s| s.as_str() == Some("atss.metrics.v1")));
        assert!(schemas
            .iter()
            .any(|s| s.as_str() == Some("atss.daemon-status.v1")));
        let commands = doc.get("commands").unwrap().as_array().unwrap();
        assert!(commands.iter().any(|c| c.as_str() == Some("daemon")));
        assert!(commands.iter().any(|c| c.as_str() == Some("client")));
        let daemon = doc.get("daemon").unwrap();
        assert_eq!(daemon.get("protocol").unwrap().as_str(), Some("ATSD"));
        assert_eq!(
            daemon.get("protocol_version").unwrap().as_i64().unwrap(),
            i64::from(at_daemon::PROTOCOL_VERSION)
        );
        assert_eq!(
            daemon.get("status_schema").unwrap().as_str(),
            Some("atss.daemon-status.v1")
        );
        let subcommands = daemon.get("subcommands").unwrap().as_array().unwrap();
        assert!(subcommands.iter().any(|s| s.as_str() == Some("run")));
        assert!(subcommands.iter().any(|s| s.as_str() == Some("status")));
        let features = doc
            .get("store")
            .unwrap()
            .get("features")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(features.iter().any(|f| f.as_str() == Some("entry-pinning")));
    }

    #[test]
    fn construct_with_mmap_reports_a_zero_copy_load() {
        let dir = fresh_cache_dir("mmap");
        construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        let warm = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
            "--mmap",
        ]))
        .unwrap();
        assert!(warm.contains("hit"), "{warm}");
        assert!(warm.contains("cache stats:"), "{warm}");
        if cfg!(target_os = "linux") {
            assert!(warm.contains("zero-copy (mmap)"), "{warm}");
            assert!(warm.contains("persisted index trusted"), "{warm}");
        }

        // The zero-copy space exports byte-identically to the direct build.
        let direct = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        let mapped = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
            "--cache-dir",
            &dir,
            "--mmap",
        ]))
        .unwrap();
        assert_eq!(direct, mapped);
    }

    #[test]
    fn mmap_without_a_cache_dir_is_an_error() {
        let err = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--mmap",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--cache-dir"), "{err}");
    }

    #[test]
    fn cache_info_reports_the_persisted_index() {
        let dir = fresh_cache_dir("info-idx");
        construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        let info = cache(&parsed(&[
            "cache",
            "info",
            "--cache-dir",
            &dir,
            "--workload",
            "dedispersion",
            "--mmap",
        ]))
        .unwrap();
        assert!(info.contains("format v2"), "{info}");
        assert!(info.contains("index:        persisted"), "{info}");
        assert!(info.contains("row-hash v1"), "{info}");
        assert!(info.contains("mmap load:"), "{info}");
        let ls = cache(&parsed(&["cache", "ls", "--cache-dir", &dir])).unwrap();
        assert!(ls.contains("yes"), "{ls}");
    }

    #[test]
    fn cache_gc_enforces_max_entries() {
        let dir = fresh_cache_dir("gc-entries");
        for workload in ["dedispersion", "hotspot"] {
            construct(&parsed(&[
                "construct",
                "--workload",
                workload,
                "--cache-dir",
                &dir,
            ]))
            .unwrap();
        }
        let gc = cache(&parsed(&[
            "cache",
            "gc",
            "--cache-dir",
            &dir,
            "--max-entries",
            "1",
        ]))
        .unwrap();
        assert!(gc.contains("evicted 1"), "{gc}");
        assert!(gc.contains("1 kept"), "{gc}");
    }

    #[test]
    fn tune_with_cache_dir_reports_the_source() {
        let dir = fresh_cache_dir("tune");
        let first = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--budget-ms",
            "1000",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        assert!(first.contains("[cache miss]"), "{first}");
        let second = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--budget-ms",
            "1000",
            "--cache-dir",
            &dir,
        ]))
        .unwrap();
        assert!(second.contains("[cache hit]"), "{second}");
        assert!(second.contains("best runtime"), "{second}");
    }

    #[test]
    fn tune_with_unknown_strategy_fails() {
        assert!(tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--strategy",
            "astrology"
        ]))
        .is_err());
    }

    #[test]
    fn check_reports_clean_and_warning_workloads() {
        let clean = check(&parsed(&["check", "--workload", "dedispersion"])).unwrap();
        assert!(clean.contains("0 error(s), 0 warning(s)"), "{clean}");

        // GEMM's paper-verbatim restrictions carry known benign warnings;
        // warnings alone must not fail the command.
        let gemm = check(&parsed(&["check", "--workload", "gemm"])).unwrap();
        assert!(gemm.contains("AT0003"), "{gemm}");
        assert!(gemm.contains("AT0006"), "{gemm}");
        assert!(gemm.contains("0 error(s), 4 warning(s)"), "{gemm}");
    }

    #[test]
    fn check_exits_nonzero_on_error_diagnostics() {
        // A restriction referencing a misspelled parameter is an AT0001
        // error; human mode must fail so gates can use the exit code.
        let dir = std::env::temp_dir().join("at-cli-check-typo");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("typo.json");
        let json = spec_template().replace("work_per_thread <=", "work_per_thrd <=");
        std::fs::write(&path, json).unwrap();

        let err = check(&parsed(&["check", "--spec", path.to_str().unwrap()])).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("AT0001"), "{text}");
        assert!(text.contains("work_per_thread"), "did-you-mean: {text}");

        // JSON mode reports the same problem in-band and succeeds.
        let json_out = check(&parsed(&[
            "check",
            "--spec",
            path.to_str().unwrap(),
            "--json",
        ]))
        .unwrap();
        assert!(json_out.contains("\"code\":\"AT0001\""), "{json_out}");
    }

    /// `check --json` must emit one parseable JSON object per diagnostic
    /// with the documented fields, plus a trailing summary object.
    #[test]
    fn check_json_schema() {
        let out = check(&parsed(&["check", "--workload", "gemm", "--json"])).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines.len() >= 2, "diagnostics + summary: {out}");

        let is_null = |v: &serde_json::Value| *v == serde_json::Value::Null;
        for line in &lines[..lines.len() - 1] {
            let d: serde_json::Value = serde_json::from_str(line).unwrap();
            let code = d.get("code").unwrap().as_str().unwrap();
            assert!(
                code.starts_with("AT") && code.len() == 6,
                "stable code: {code}"
            );
            let severity = d.get("severity").unwrap().as_str().unwrap();
            assert!(matches!(severity, "error" | "warning"), "{severity}");
            assert!(d.get("message").unwrap().as_str().is_some());
            let restriction = d.get("restriction").unwrap();
            assert!(restriction.as_i64().is_some() || is_null(restriction));
            let source = d.get("source").unwrap();
            assert!(source.as_str().is_some() || is_null(source));
            let span = d.get("span").unwrap();
            if !is_null(span) {
                let start = span.get("start").unwrap().as_i64().unwrap();
                let end = span.get("end").unwrap().as_i64().unwrap();
                assert!(0 <= start && start <= end);
            }
            let help = d.get("help").unwrap();
            assert!(help.as_str().is_some() || is_null(help));
        }

        let summary: serde_json::Value = serde_json::from_str(lines[lines.len() - 1]).unwrap();
        assert_eq!(
            summary.get("schema").unwrap().as_str(),
            Some("atss.check.v1")
        );
        assert_eq!(
            summary.get("summary").unwrap(),
            &serde_json::Value::Bool(true)
        );
        assert_eq!(summary.get("spec").unwrap().as_str(), Some("GEMM"));
        assert_eq!(summary.get("restrictions").unwrap().as_i64(), Some(8));
        assert_eq!(summary.get("errors").unwrap().as_i64(), Some(0));
        assert_eq!(summary.get("warnings").unwrap().as_i64(), Some(4));
        assert!(summary.get("prunable_values").unwrap().as_i64().is_some());
    }

    /// Tests that flip the process-global recorder on serialize here, so
    /// concurrently running tests never drain each other's spans.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn construct_json_schema() {
        let out = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--json",
        ]))
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "atss.construct.v1"
        );
        assert_eq!(doc.get("space").unwrap().as_str().unwrap(), "Dedispersion");
        assert_eq!(doc.get("method").unwrap().as_str().unwrap(), "optimized");
        assert!(doc.get("valid").unwrap().as_i64().unwrap() > 1000);
        assert!(doc.get("cartesian").unwrap().as_i64().unwrap() > 0);
        assert!(doc.get("construction_ms").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("constraint_checks").unwrap().as_i64().unwrap() > 0);
        assert!(doc.get("arena_bytes").unwrap().as_i64().unwrap() > 0);
        assert_eq!(doc.get("cache_source").unwrap().as_str().unwrap(), "cold");
        // The envelope only rides along when --metrics is passed.
        assert!(doc.get("observability").is_none());
    }

    #[test]
    fn compare_json_schema() {
        let out = compare(&parsed(&[
            "compare",
            "--workload",
            "dedispersion",
            "--methods",
            "optimized,chain-of-trees",
            "--json",
        ]))
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "atss.compare.v1"
        );
        assert_eq!(doc.get("space").unwrap().as_str().unwrap(), "Dedispersion");
        let methods = doc.get("methods").unwrap().as_array().unwrap();
        assert_eq!(methods.len(), 2);
        for entry in methods {
            assert!(entry.get("method").unwrap().as_str().is_some());
            assert!(entry.get("duration_ms").unwrap().as_f64().unwrap() > 0.0);
            assert!(entry.get("valid").unwrap().as_i64().unwrap() > 1000);
        }
    }

    #[test]
    fn construct_metrics_envelope_and_trace_roundtrip() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("at-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("construct-trace.json");
        let out = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--metrics",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();

        // The envelope is the final output line.
        let envelope = out.lines().last().unwrap();
        let doc: serde_json::Value = serde_json::from_str(envelope).unwrap();
        assert_eq!(
            doc.get("schema").unwrap().as_str().unwrap(),
            "atss.metrics.v1"
        );
        assert_eq!(doc.get("command").unwrap().as_str().unwrap(), "construct");
        assert!(doc.get("spans").unwrap().as_i64().unwrap() > 0);
        let phases = doc.get("phases").unwrap().as_array().unwrap();
        let names: Vec<&str> = phases
            .iter()
            .map(|p| p.get("name").unwrap().as_str().unwrap())
            .collect();
        for expected in ["parse-spec", "check", "lower", "solve", "encode-finish"] {
            assert!(names.contains(&expected), "{expected} missing in {names:?}");
        }
        let solve = doc.get("solve").unwrap();
        assert!(solve.get("constraint_checks").unwrap().as_i64().unwrap() > 0);
        assert!(solve.get("valid").unwrap().as_i64().unwrap() > 1000);
        // The test binary does not install the counting allocator, and the
        // envelope says so rather than reporting a bogus zero peak.
        let alloc = doc.get("alloc").unwrap();
        assert_eq!(
            alloc.get("installed").unwrap(),
            &serde_json::Value::Bool(false)
        );

        // The trace file passes the tool's own structural linter.
        let lint = trace_lint(&parsed(&["trace-lint", trace.to_str().unwrap()])).unwrap();
        assert!(lint.contains("trace OK"), "{lint}");
    }

    #[test]
    fn tune_json_with_metrics_embeds_the_envelope() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let out = tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--budget-ms",
            "1000",
            "--seed",
            "3",
            "--construction-ms",
            "0",
            "--json",
            "--metrics",
        ]))
        .unwrap();
        let doc: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(doc.get("schema").unwrap().as_str().unwrap(), "atss.tune.v1");
        let obs = doc.get("observability").unwrap();
        assert_eq!(
            obs.get("schema").unwrap().as_str().unwrap(),
            "atss.metrics.v1"
        );
        assert_eq!(obs.get("command").unwrap().as_str().unwrap(), "tune");
        let eval = obs.get("eval").unwrap();
        assert!(eval.get("proposed").unwrap().as_i64().unwrap() > 0);
    }

    #[test]
    fn trace_lint_rejects_malformed_traces() {
        let dir = std::env::temp_dir().join("at-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();

        let not_array = dir.join("not-array.json");
        std::fs::write(&not_array, "{}").unwrap();
        let err = trace_lint(&parsed(&["trace-lint", not_array.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("array"), "{err}");

        let missing_ph = dir.join("missing-ph.json");
        std::fs::write(&missing_ph, r#"[{"name":"a","pid":1,"tid":0}]"#).unwrap();
        let err = trace_lint(&parsed(&["trace-lint", missing_ph.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("event 0"), "{err}");

        let non_monotone = dir.join("non-monotone.json");
        std::fs::write(
            &non_monotone,
            r#"[{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"atss"}},
{"name":"a","cat":"c","ph":"X","ts":5.0,"dur":1.0,"pid":1,"tid":0},
{"name":"b","cat":"c","ph":"X","ts":3.0,"dur":1.0,"pid":1,"tid":0}]"#,
        )
        .unwrap();
        let err = trace_lint(&parsed(&["trace-lint", non_monotone.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("monotone"), "{err}");

        assert!(trace_lint(&parsed(&["trace-lint"])).is_err());
        assert!(trace_lint(&parsed(&["trace-lint", "/no/such/trace.json"])).is_err());
    }

    #[test]
    fn tracing_does_not_change_the_export() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let dir = std::env::temp_dir().join("at-cli-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("identity-trace.json");
        let plain = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        let traced = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(plain, traced, "--trace must not change the export");
    }

    #[test]
    fn construct_with_prune_matches_plain_construction() {
        let plain = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        let pruned = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
            "--prune",
        ]))
        .unwrap();
        assert_eq!(plain, pruned, "--prune must not change the space");
    }
}
