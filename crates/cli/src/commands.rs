//! Implementations of the `atss` subcommands.

use std::fmt::Write as _;
use std::time::Duration;

use at_searchspace::{
    build_search_space, spec_from_json, to_csv, to_json_cache, Method, SearchSpaceSpec,
    SpaceCharacteristics,
};
use at_tuner::{strategy_by_name, tune as run_tuning};
use at_workloads::{all_real_world, performance_model_for, real_world_by_name, real_world_names};

use crate::args::ParsedArgs;
use crate::CliError;

/// The help text.
pub fn help() -> String {
    "\
atss — auto-tuning search space construction (ICPP'25 reproduction)

USAGE:
    atss <command> [flags]

COMMANDS:
    workloads       List the built-in real-world search spaces (Table 2)
    construct       Construct a search space and print or export it
                      --workload <name> | --spec <file.json>
                      --method <brute-force|original|optimized|parallel-optimized|
                                chain-of-trees|blocking-clause>   (default: optimized)
                      --format <count|summary|csv|json>           (default: summary)
                      --out <path>                                 write instead of print
    compare         Time several construction methods on one space
                      --workload <name> | --spec <file.json>
                      --methods <comma-separated labels>
    tune            Run a simulated tuning session on a built-in workload
                      --workload <name>  --strategy <name>  --budget-ms <n>
                      --method <construction method>  --seed <n>
    spec-template   Print an example JSON space specification
    help            Show this message

Built-in workloads: dedispersion, expdist, hotspot, gemm, microhh,
prl-2x2, prl-4x4, prl-8x8.
"
    .to_string()
}

/// An example specification file.
pub fn spec_template() -> String {
    r#"{
  "name": "example",
  "parameters": [
    {"name": "block_size_x", "values": [1, 2, 4, 8, 16, 32, 64, 128, 256]},
    {"name": "block_size_y", "values": [1, 2, 4, 8, 16, 32]},
    {"name": "work_per_thread", "values": [1, 2, 4, 8]},
    {"name": "use_shared_memory", "values": [0, 1]}
  ],
  "restrictions": [
    "32 <= block_size_x * block_size_y <= 1024",
    "work_per_thread <= block_size_y",
    "use_shared_memory == 0 or block_size_x * work_per_thread * 4 <= 4096"
  ]
}
"#
    .to_string()
}

/// Resolve the search space specification selected by `--workload` or `--spec`.
fn resolve_spec(args: &ParsedArgs) -> Result<SearchSpaceSpec, CliError> {
    match (args.get("workload"), args.get("spec")) {
        (Some(name), None) => real_world_by_name(name).map(|w| w.spec).ok_or_else(|| {
            CliError::Run(format!(
                "unknown workload `{name}` (available: {})",
                real_world_names().join(", ")
            ))
        }),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Run(format!("cannot read `{path}`: {e}")))?;
            spec_from_json(&text).map_err(|e| CliError::Run(format!("cannot parse `{path}`: {e}")))
        }
        (Some(_), Some(_)) => Err(CliError::Run(
            "pass either --workload or --spec, not both".to_string(),
        )),
        (None, None) => Err(CliError::Run(
            "pass --workload <name> or --spec <file.json>".to_string(),
        )),
    }
}

fn resolve_method(args: &ParsedArgs) -> Result<Method, CliError> {
    match args.get("method") {
        None => Ok(Method::Optimized),
        Some(label) => Method::from_label(label).ok_or_else(|| {
            CliError::Run(format!(
                "unknown method `{label}` (available: {})",
                Method::all()
                    .iter()
                    .map(|m| m.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }),
    }
}

/// `atss workloads`
pub fn workloads(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&[])?;
    let mut out = String::new();
    writeln!(
        out,
        "{:<14} {:>16} {:>8} {:>12} {:>18}",
        "name", "cartesian", "params", "constraints", "paper valid"
    )
    .expect("write to string");
    for w in all_real_world() {
        writeln!(
            out,
            "{:<14} {:>16} {:>8} {:>12} {:>18}",
            w.spec.name,
            w.spec.cartesian_size(),
            w.spec.num_params(),
            w.spec.num_restrictions(),
            w.paper.num_valid,
        )
        .expect("write to string");
    }
    writeln!(
        out,
        "\nshort names for --workload: {}",
        real_world_names().join(", ")
    )
    .expect("write to string");
    Ok(out)
}

/// `atss construct`
pub fn construct(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&["workload", "spec", "method", "format", "out"])?;
    let spec = resolve_spec(args)?;
    let method = resolve_method(args)?;
    let (space, report) = build_search_space(&spec, method)
        .map_err(|e| CliError::Run(format!("construction failed: {e}")))?;

    let format = args.get("format").unwrap_or("summary");
    let rendered = match format {
        "count" => format!("{}\n", space.len()),
        "csv" => to_csv(&space),
        "json" => to_json_cache(&space),
        "summary" => {
            let characteristics = SpaceCharacteristics::compute(&spec, &space);
            let mut out = String::new();
            writeln!(out, "space:                {}", spec.name).expect("write to string");
            writeln!(out, "method:               {}", method.label()).expect("write to string");
            writeln!(out, "construction time:    {:?}", report.duration).expect("write to string");
            writeln!(out, "cartesian size:       {}", report.cartesian_size)
                .expect("write to string");
            writeln!(out, "valid configurations: {}", space.len()).expect("write to string");
            writeln!(
                out,
                "valid fraction:       {:.3} %",
                characteristics.percent_valid
            )
            .expect("write to string");
            writeln!(
                out,
                "constraints (as written / after lowering): {} / {}",
                spec.num_restrictions(),
                report.num_constraints
            )
            .expect("write to string");
            writeln!(
                out,
                "constraint checks:    {}",
                report.stats.constraint_checks
            )
            .expect("write to string");
            // The resolved arena footprint; construction streams solver
            // rows straight into it, so no decoded copy of the space is
            // ever held alongside.
            writeln!(
                out,
                "code arena:           {} bytes ({} configs x {} u32 codes)",
                space.len() * space.num_params() * std::mem::size_of::<u32>(),
                space.len(),
                space.num_params()
            )
            .expect("write to string");
            out
        }
        other => {
            return Err(CliError::Run(format!(
                "unknown format `{other}` (count, summary, csv, json)"
            )))
        }
    };

    match args.get("out") {
        None => Ok(rendered),
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| CliError::Run(format!("cannot write `{path}`: {e}")))?;
            Ok(format!(
                "wrote {} bytes ({} configurations) to {path}\n",
                rendered.len(),
                space.len()
            ))
        }
    }
}

/// `atss compare`
pub fn compare(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&["workload", "spec", "methods"])?;
    let spec = resolve_spec(args)?;
    let methods: Vec<Method> = match args.get("methods") {
        None => vec![Method::Optimized, Method::ChainOfTrees, Method::Original],
        Some(list) => list
            .split(',')
            .map(|label| {
                Method::from_label(label.trim())
                    .ok_or_else(|| CliError::Run(format!("unknown method `{label}`")))
            })
            .collect::<Result<_, _>>()?,
    };

    let mut out = String::new();
    writeln!(out, "space: {}", spec.name).expect("write to string");
    writeln!(
        out,
        "{:<20} {:>14} {:>12} {:>18}",
        "method", "time", "valid", "constraint checks"
    )
    .expect("write to string");
    let mut reference: Option<usize> = None;
    for method in methods {
        let (space, report) = build_search_space(&spec, method)
            .map_err(|e| CliError::Run(format!("{}: {e}", method.label())))?;
        if let Some(expected) = reference {
            if expected != space.len() {
                return Err(CliError::Run(format!(
                    "{} produced {} configurations, expected {expected}",
                    method.label(),
                    space.len()
                )));
            }
        } else {
            reference = Some(space.len());
        }
        writeln!(
            out,
            "{:<20} {:>14} {:>12} {:>18}",
            method.label(),
            format!("{:.3?}", report.duration),
            space.len(),
            report.stats.constraint_checks
        )
        .expect("write to string");
    }
    Ok(out)
}

/// `atss tune`
pub fn tune(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known_flags(&["workload", "strategy", "budget-ms", "method", "seed"])?;
    let name = args.require("workload")?;
    let workload = real_world_by_name(name)
        .ok_or_else(|| CliError::Run(format!("unknown workload `{name}`")))?;
    let strategy_name = args.get("strategy").unwrap_or("random");
    let strategy = strategy_by_name(strategy_name)
        .ok_or_else(|| CliError::Run(format!("unknown strategy `{strategy_name}`")))?;
    let budget_ms: u64 = args
        .number("budget-ms", 30_000u64)
        .map_err(CliError::Args)?;
    let seed: u64 = args.number("seed", 42u64).map_err(CliError::Args)?;
    let method = resolve_method(args)?;

    let (space, report) = build_search_space(&workload.spec, method)
        .map_err(|e| CliError::Run(format!("construction failed: {e}")))?;
    let model = performance_model_for(&workload.spec.name, &space, seed);
    let run = run_tuning(
        &space,
        &model,
        strategy.as_ref(),
        Duration::from_millis(budget_ms),
        report.duration,
        seed,
    );

    let mut out = String::new();
    writeln!(out, "workload:           {}", workload.spec.name).expect("write to string");
    writeln!(
        out,
        "construction:       {} ({:?})",
        method.label(),
        report.duration
    )
    .expect("write to string");
    writeln!(out, "strategy:           {}", run.strategy).expect("write to string");
    writeln!(out, "budget:             {budget_ms} ms (virtual)").expect("write to string");
    writeln!(out, "evaluations:        {}", run.num_evaluations()).expect("write to string");
    match run.best_runtime_ms() {
        Some(best) => {
            writeln!(out, "best runtime:       {best:.3} ms (simulated)").expect("write to string")
        }
        None => writeln!(
            out,
            "best runtime:       none (budget exhausted by construction)"
        )
        .expect("write to string"),
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn parsed(args: &[&str]) -> ParsedArgs {
        parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn resolve_spec_requires_a_source() {
        assert!(resolve_spec(&parsed(&["construct"])).is_err());
        assert!(resolve_spec(&parsed(&[
            "construct",
            "--workload",
            "gemm",
            "--spec",
            "x.json"
        ]))
        .is_err());
        let spec = resolve_spec(&parsed(&["construct", "--workload", "gemm"])).unwrap();
        assert_eq!(spec.name, "GEMM");
    }

    #[test]
    fn resolve_spec_reads_files() {
        let dir = std::env::temp_dir().join("at-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("space.json");
        std::fs::write(&path, spec_template()).unwrap();
        let spec = resolve_spec(&parsed(&["construct", "--spec", path.to_str().unwrap()])).unwrap();
        assert_eq!(spec.name, "example");
        assert!(resolve_spec(&parsed(&["construct", "--spec", "/no/such/file.json"])).is_err());
    }

    #[test]
    fn resolve_method_defaults_to_optimized() {
        assert_eq!(
            resolve_method(&parsed(&["construct"])).unwrap(),
            Method::Optimized
        );
        assert_eq!(
            resolve_method(&parsed(&["construct", "--method", "chain-of-trees"])).unwrap(),
            Method::ChainOfTrees
        );
        assert!(resolve_method(&parsed(&["construct", "--method", "nope"])).is_err());
    }

    #[test]
    fn construct_csv_and_count_formats() {
        let count = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "count",
        ]))
        .unwrap();
        let n: usize = count.trim().parse().unwrap();
        assert!(n > 1000);
        let csv = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "csv",
        ]))
        .unwrap();
        assert_eq!(csv.lines().count(), n + 1); // header + one line per config
        assert!(csv.lines().next().unwrap().contains("block_size_x"));
    }

    #[test]
    fn construct_writes_output_files() {
        let dir = std::env::temp_dir().join("at-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dedispersion.json");
        let msg = construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--format",
            "json",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(msg.contains("wrote"));
        let written = std::fs::read_to_string(&path).unwrap();
        assert!(written.contains("configurations"));
    }

    #[test]
    fn compare_rejects_unknown_methods() {
        assert!(compare(&parsed(&[
            "compare",
            "--workload",
            "dedispersion",
            "--methods",
            "optimized,warp-drive"
        ]))
        .is_err());
    }

    #[test]
    fn unknown_flag_is_caught_per_command() {
        assert!(construct(&parsed(&[
            "construct",
            "--workload",
            "dedispersion",
            "--formt",
            "count"
        ]))
        .is_err());
    }

    #[test]
    fn tune_with_unknown_strategy_fails() {
        assert!(tune(&parsed(&[
            "tune",
            "--workload",
            "dedispersion",
            "--strategy",
            "astrology"
        ]))
        .is_err());
    }
}
