//! `atss` — the command-line front end for this repository.
//!
//! See `atss help` (or [`at_cli`]) for the available commands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

/// The counting allocator from `at_obs` backs the `--metrics` envelope's
/// `alloc.peak_bytes` probe (peak transient heap of a construction). It
/// delegates to the system allocator with two relaxed atomic updates per
/// allocation — the same cost the benches have always paid.
#[global_allocator]
static ALLOC: at_obs::alloc::CountingAllocator = at_obs::alloc::CountingAllocator;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match at_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
