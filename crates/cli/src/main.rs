//! `atss` — the command-line front end for this repository.
//!
//! See `atss help` (or [`at_cli`]) for the available commands.

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match at_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
