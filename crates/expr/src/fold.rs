//! Constant folding (Figure 1, step 1).
//!
//! Sub-expressions without variable references are evaluated at parse time,
//! and boolean connectives are simplified (`x and True` → `x`,
//! `x or True` → `True`, …). Folding never changes the semantics: when the
//! evaluation of a constant sub-expression would fail (e.g. division by
//! zero), the sub-expression is left untouched so the error surfaces at the
//! same point as without folding.

use at_csp::Value;
use rustc_hash::FxHashMap;

use crate::ast::Expr;

/// Fold constant sub-expressions.
pub fn fold(expr: Expr) -> Expr {
    let folded = match expr {
        Expr::Const(_) | Expr::Var(_) => expr,
        Expr::Neg(e) => Expr::Neg(Box::new(fold(*e))),
        Expr::Not(e) => {
            let inner = fold(*e);
            if let Expr::Const(v) = &inner {
                return Expr::Const(Value::Bool(!v.truthy()));
            }
            Expr::Not(Box::new(inner))
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(fold(*lhs)),
            rhs: Box::new(fold(*rhs)),
        },
        Expr::Compare { first, rest } => Expr::Compare {
            first: Box::new(fold(*first)),
            rest: rest.into_iter().map(|(op, e)| (op, fold(e))).collect(),
        },
        Expr::And(es) => {
            let mut kept = Vec::new();
            for e in es {
                let e = fold(e);
                match e {
                    Expr::Const(v) if v.truthy() => {}       // neutral element
                    Expr::Const(v) => return Expr::Const(v), // short-circuits to false
                    other => kept.push(other),
                }
            }
            match kept.len() {
                0 => Expr::Const(Value::Bool(true)),
                1 => kept.pop().expect("one element"),
                _ => Expr::And(kept),
            }
        }
        Expr::Or(es) => {
            let mut kept = Vec::new();
            for e in es {
                let e = fold(e);
                match e {
                    Expr::Const(v) if !v.truthy() => {}      // neutral element
                    Expr::Const(v) => return Expr::Const(v), // short-circuits to true
                    other => kept.push(other),
                }
            }
            match kept.len() {
                0 => Expr::Const(Value::Bool(false)),
                1 => kept.pop().expect("one element"),
                _ => Expr::Or(kept),
            }
        }
        Expr::In {
            value,
            set,
            negated,
        } => Expr::In {
            value: Box::new(fold(*value)),
            set: set.into_iter().map(fold).collect(),
            negated,
        },
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args.into_iter().map(fold).collect(),
        },
    };
    // If the (sub)expression has become fully constant, evaluate it now.
    if !matches!(folded, Expr::Const(_)) && folded.is_constant() {
        let env: FxHashMap<String, Value> = FxHashMap::default();
        if let Ok(v) = folded.evaluate(&env) {
            return Expr::Const(v);
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn folded(src: &str) -> Expr {
        fold(parse(src).unwrap())
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(folded("2 * 3 + 4"), Expr::Const(Value::Int(10)));
        assert_eq!(folded("2 ** 10"), Expr::Const(Value::Int(1024)));
    }

    #[test]
    fn folds_comparisons_and_bools() {
        assert_eq!(folded("1 < 2"), Expr::Const(Value::Bool(true)));
        assert_eq!(folded("not (1 < 2)"), Expr::Const(Value::Bool(false)));
        assert_eq!(folded("1 < 2 and 3 < 4"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn drops_neutral_conjuncts() {
        let e = folded("x > 1 and True and 2 < 3");
        assert_eq!(e, parse("x > 1").unwrap());
    }

    #[test]
    fn false_conjunct_collapses() {
        assert_eq!(folded("x > 1 and 1 > 2"), Expr::Const(Value::Bool(false)));
    }

    #[test]
    fn true_disjunct_collapses() {
        assert_eq!(folded("x > 1 or 2 > 1"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn neutral_disjunct_dropped() {
        let e = folded("x > 1 or False");
        assert_eq!(e, parse("x > 1").unwrap());
    }

    #[test]
    fn division_by_zero_left_untouched() {
        // Must not panic and must not silently become a constant.
        let e = folded("x > 1 / 0");
        assert!(matches!(e, Expr::Compare { .. }));
    }

    #[test]
    fn folds_inside_variable_expressions() {
        // The constant factor 16*4 folds even though x is unknown.
        let e = folded("x * (16 * 4)");
        match e {
            Expr::Binary { rhs, .. } => assert_eq!(*rhs, Expr::Const(Value::Int(64))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn membership_of_constants_folds() {
        assert_eq!(folded("3 in [1, 2, 3]"), Expr::Const(Value::Bool(true)));
        assert_eq!(folded("5 not in [1, 2, 3]"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn call_folds() {
        assert_eq!(folded("min(3, 4) == 3"), Expr::Const(Value::Bool(true)));
    }
}
