//! Constant folding (Figure 1, step 1).
//!
//! Sub-expressions without variable references are evaluated at parse time,
//! and boolean connectives are simplified (`x and True` → `x`,
//! `False or x` → `x`, …). Folding never changes the semantics under the
//! restriction evaluation convention (a configuration whose evaluation
//! *errors* is rejected, exactly as a raising Python restriction rejects
//! it): when the evaluation of a constant sub-expression would fail (e.g.
//! division by zero), the sub-expression is left untouched so the error
//! surfaces at the same point as without folding — and a decisive constant
//! inside a connective never erases a preceding operand that could still
//! error. `x or True` therefore folds to `x or True` (the trailing
//! disjuncts are dropped, the connective is kept): collapsing it to `True`
//! would accept configurations where `x` raises, which the reference
//! interpreter — and Python — rejects.
//!
//! The simplifications distinguish two contexts. At the *boolean* positions
//! (the top level of a restriction and the operands of `and`/`or`/`not`)
//! only truthiness is observable, so neutral constants are dropped and
//! single-operand connectives unwrap. At *value* positions (a
//! parenthesized connective inside arithmetic or a comparison, e.g.
//! `(x and 1) - 1`) the connective's `Bool` result is itself an operand,
//! so the connective wrapper is kept — unwrapping `And([x])` to `x` would
//! replace `Bool(truthy(x))` with the raw value of `x`.

use at_csp::Value;
use rustc_hash::FxHashMap;

use crate::ast::Expr;

/// How the folded (sub)expression's result is consumed — see the module
/// docs. Boolean positions may apply truthiness-only rewrites; value
/// positions only rewrites that preserve the exact result value.
#[derive(Clone, Copy, PartialEq)]
enum Ctx {
    Boolean,
    Value,
}

/// Fold constant sub-expressions of a restriction (a boolean-position
/// expression).
pub fn fold(expr: Expr) -> Expr {
    fold_in(expr, Ctx::Boolean)
}

fn fold_in(expr: Expr, ctx: Ctx) -> Expr {
    let folded = match expr {
        Expr::Const(_) | Expr::Var(_) => expr,
        Expr::Neg(e) => Expr::Neg(Box::new(fold_in(*e, Ctx::Value))),
        Expr::Not(e) => {
            // `not` observes only its operand's truthiness and always
            // returns a `Bool`, in either context.
            let inner = fold_in(*e, Ctx::Boolean);
            if let Expr::Const(v) = &inner {
                return Expr::Const(Value::Bool(!v.truthy()));
            }
            Expr::Not(Box::new(inner))
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(fold_in(*lhs, Ctx::Value)),
            rhs: Box::new(fold_in(*rhs, Ctx::Value)),
        },
        Expr::Compare { first, rest } => Expr::Compare {
            first: Box::new(fold_in(*first, Ctx::Value)),
            rest: rest
                .into_iter()
                .map(|(op, e)| (op, fold_in(e, Ctx::Value)))
                .collect(),
        },
        Expr::And(es) => fold_connective(es, ctx, false),
        Expr::Or(es) => fold_connective(es, ctx, true),
        Expr::In {
            value,
            set,
            negated,
        } => Expr::In {
            value: Box::new(fold_in(*value, Ctx::Value)),
            set: set.into_iter().map(|e| fold_in(e, Ctx::Value)).collect(),
            negated,
        },
        Expr::Call { func, args } => Expr::Call {
            func,
            args: args.into_iter().map(|e| fold_in(e, Ctx::Value)).collect(),
        },
    };
    // If the (sub)expression has become fully constant, evaluate it now.
    // This is exact (the same interpreter, the same result value), so it
    // is sound in any context.
    if !matches!(folded, Expr::Const(_)) && folded.is_constant() {
        let env: FxHashMap<String, Value> = FxHashMap::default();
        if let Ok(v) = folded.evaluate(&env) {
            return Expr::Const(v);
        }
    }
    folded
}

/// Fold the operand list of `and` (`decisive = false`) or `or`
/// (`decisive = true`): a constant operand whose truthiness equals
/// `decisive` decides the connective.
///
/// Neutral constants are always dropped (the connective evaluates to
/// `Bool(all/any truthy)`, so a neutral operand never changes the result).
/// A decisive constant ends the list: the operands after it are dropped
/// (they are never evaluated), but the operands *before* it are kept —
/// they may error, and an error must keep surfacing exactly as in the
/// unfolded expression. Only when no (possibly erroring) operand precedes
/// it may the connective collapse to the constant itself.
fn fold_connective(es: Vec<Expr>, ctx: Ctx, decisive: bool) -> Expr {
    let mut kept = Vec::new();
    for e in es {
        match fold_in(e, Ctx::Boolean) {
            Expr::Const(v) if v.truthy() != decisive => {} // neutral element
            Expr::Const(_) => {
                // The connective's result is `Bool`, so the decisive
                // constant is kept in its truthiness-normal form.
                if kept.is_empty() {
                    return Expr::Const(Value::Bool(decisive));
                }
                kept.push(Expr::Const(Value::Bool(decisive)));
                break;
            }
            other => kept.push(other),
        }
    }
    let wrap = |kept| {
        if decisive {
            Expr::Or(kept)
        } else {
            Expr::And(kept)
        }
    };
    match kept.len() {
        0 => Expr::Const(Value::Bool(!decisive)),
        // In a boolean position a single operand's truthiness is the
        // result's truthiness; in a value position the `Bool` wrapper is
        // observable and must stay.
        1 if ctx == Ctx::Boolean => kept.pop().expect("one element"),
        _ => wrap(kept),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn folded(src: &str) -> Expr {
        fold(parse(src).unwrap())
    }

    #[test]
    fn folds_arithmetic() {
        assert_eq!(folded("2 * 3 + 4"), Expr::Const(Value::Int(10)));
        assert_eq!(folded("2 ** 10"), Expr::Const(Value::Int(1024)));
    }

    #[test]
    fn folds_comparisons_and_bools() {
        assert_eq!(folded("1 < 2"), Expr::Const(Value::Bool(true)));
        assert_eq!(folded("not (1 < 2)"), Expr::Const(Value::Bool(false)));
        assert_eq!(folded("1 < 2 and 3 < 4"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn drops_neutral_conjuncts() {
        let e = folded("x > 1 and True and 2 < 3");
        assert_eq!(e, parse("x > 1").unwrap());
    }

    #[test]
    fn false_conjunct_truncates_but_keeps_earlier_operands() {
        // `x > 1` may error (e.g. a string-valued x compared to an int),
        // and an erroring configuration must stay rejected — so the
        // conjunct is kept, the decisive constant appended, and the rest
        // dropped.
        let e = folded("x > 1 and 1 > 2 and y < 3");
        assert_eq!(
            e,
            Expr::And(vec![
                parse("x > 1").unwrap(),
                Expr::Const(Value::Bool(false)),
            ])
        );
    }

    #[test]
    fn leading_false_conjunct_collapses() {
        assert_eq!(folded("1 > 2 and x > 1"), Expr::Const(Value::Bool(false)));
    }

    #[test]
    fn true_disjunct_truncates_but_keeps_earlier_operands() {
        // The dual of the `and` case: `x > 1 or True` must NOT collapse to
        // `True` — when `x > 1` errors, the reference semantics reject the
        // configuration, while a collapsed `True` would accept it.
        let e = folded("x > 1 or 2 > 1 or y < 3");
        assert_eq!(
            e,
            Expr::Or(vec![
                parse("x > 1").unwrap(),
                Expr::Const(Value::Bool(true)),
            ])
        );
    }

    #[test]
    fn leading_true_disjunct_collapses() {
        assert_eq!(folded("2 > 1 or x > 1"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn neutral_disjunct_dropped() {
        let e = folded("x > 1 or False");
        assert_eq!(e, parse("x > 1").unwrap());
    }

    #[test]
    fn connective_in_value_position_keeps_its_wrapper() {
        // `(x and 1)` evaluates to `Bool(truthy(x))`; unwrapping it to `x`
        // inside arithmetic would change `(x and 1) - 1` from `0` to
        // `x - 1`.
        let e = folded("(x and 1) - 1");
        match &e {
            Expr::Binary { lhs, .. } => {
                assert_eq!(**lhs, Expr::And(vec![Expr::Var("x".into())]));
            }
            other => panic!("{other:?}"),
        }
        // At a boolean position the same connective unwraps.
        assert_eq!(folded("x and 1"), Expr::Var("x".into()));
    }

    #[test]
    fn division_by_zero_left_untouched() {
        // Must not panic and must not silently become a constant.
        let e = folded("x > 1 / 0");
        assert!(matches!(e, Expr::Compare { .. }));
    }

    #[test]
    fn erroring_disjunct_is_not_erased_by_a_true_constant() {
        // `1 / 0 == 0` errors; `... or True` must keep erroring (→ the
        // configuration is rejected), not fold to an accepting `True`.
        let e = folded("1 / 0 == 0 or True");
        match &e {
            Expr::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::Compare { .. }));
                assert_eq!(parts[1], Expr::Const(Value::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
        let env: FxHashMap<String, Value> = FxHashMap::default();
        assert!(e.evaluate(&env).is_err(), "the error must still surface");
    }

    #[test]
    fn folds_inside_variable_expressions() {
        // The constant factor 16*4 folds even though x is unknown.
        let e = folded("x * (16 * 4)");
        match e {
            Expr::Binary { rhs, .. } => assert_eq!(*rhs, Expr::Const(Value::Int(64))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn membership_of_constants_folds() {
        assert_eq!(folded("3 in [1, 2, 3]"), Expr::Const(Value::Bool(true)));
        assert_eq!(folded("5 not in [1, 2, 3]"), Expr::Const(Value::Bool(true)));
    }

    #[test]
    fn call_folds() {
        assert_eq!(folded("min(3, 4) == 3"), Expr::Const(Value::Bool(true)));
    }
}
