//! Constraint decomposition (Figure 1, step 2).
//!
//! A compound constraint such as
//! `2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024`
//! can only be evaluated once *both* parameters are resolved. Splitting it
//! into the independent conjuncts
//!
//! * `2 <= block_size_y`
//! * `block_size_y <= 32`
//! * `32 <= block_size_x * block_size_y`
//! * `block_size_x * block_size_y <= 1024`
//!
//! lets the solver discard invalid configurations as soon as a *single*
//! parameter is resolved, and exposes each conjunct to specific-constraint
//! recognition (step 3).

use crate::ast::Expr;

/// Split an expression into independently enforceable conjuncts.
///
/// Top-level `and`s are flattened and chained comparisons are expanded into
/// pairwise comparisons. Disjunctions and negations are left intact (they
/// cannot be decomposed without changing semantics).
pub fn decompose(expr: Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    split(expr, &mut out);
    out
}

fn split(expr: Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::And(parts) => {
            for part in parts {
                split(part, out);
            }
        }
        Expr::Compare { first, rest } if rest.len() > 1 => {
            // a op1 b op2 c  →  (a op1 b) and (b op2 c)
            let mut prev = *first;
            for (op, next) in rest {
                out.push(Expr::Compare {
                    first: Box::new(prev.clone()),
                    rest: vec![(op, next.clone())],
                });
                prev = next;
            }
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold;
    use crate::parser::parse;
    use at_csp::Value;
    use rustc_hash::FxHashMap;

    fn pieces(src: &str) -> Vec<Expr> {
        decompose(fold(parse(src).unwrap()))
    }

    fn env(pairs: &[(&str, i64)]) -> FxHashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn figure1_example_decomposes_into_four() {
        let ps = pieces("2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024");
        assert_eq!(ps.len(), 4);
        // the first two conjuncts involve only block_size_y
        assert_eq!(ps[0].variables(), vec!["block_size_y".to_string()]);
        assert_eq!(ps[1].variables(), vec!["block_size_y".to_string()]);
        assert_eq!(ps[2].variables().len(), 2);
        assert_eq!(ps[3].variables().len(), 2);
    }

    #[test]
    fn top_level_and_is_flattened() {
        let ps = pieces("a > 1 and b > 2 and c > 3 and d > 4");
        assert_eq!(ps.len(), 4);
    }

    #[test]
    fn nested_and_flattened() {
        let ps = pieces("(a > 1 and b > 2) and (c > 3 and d < 2)");
        assert_eq!(ps.len(), 4);
    }

    #[test]
    fn or_is_not_split() {
        let ps = pieces("a > 1 or b > 2");
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn chain_inside_and() {
        let ps = pieces("1 <= a <= 4 and b == 2");
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn decomposition_preserves_semantics() {
        let src = "2 <= y <= 32 <= x * y <= 1024 and x % 2 == 0";
        let original = fold(parse(src).unwrap());
        let parts = decompose(original.clone());
        for (x, y) in [(16i64, 4i64), (2, 1), (64, 64), (7, 8), (32, 1), (33, 2)] {
            let env = env(&[("x", x), ("y", y)]);
            let reference = original.evaluate(&env).unwrap().truthy();
            let conjunction = parts.iter().all(|p| p.evaluate(&env).unwrap().truthy());
            assert_eq!(reference, conjunction, "x={x} y={y}");
        }
    }

    #[test]
    fn single_comparison_is_untouched() {
        let ps = pieces("x * y <= 1024");
        assert_eq!(ps.len(), 1);
    }
}
