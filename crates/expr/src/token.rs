//! Tokens of the constraint expression language.
//!
//! The language is the subset of Python expressions that occurs in
//! auto-tuning constraints: arithmetic, comparisons (including chained
//! comparisons), boolean operators, membership tests and a few built-in
//! functions (`min`, `max`, `abs`).

use at_csp::CmpOp;

/// A lexical token together with its byte position in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub position: usize,
    /// Byte offset one past the last character of the token.
    pub end: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (single or double quoted).
    Str(String),
    /// Identifier: a tunable parameter name or a function name.
    Ident(String),
    /// `True`
    True,
    /// `False`
    False,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    DoubleStar,
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `%`
    Percent,
    /// A comparison operator.
    Cmp(CmpOp),
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `in`
    In,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::True => "True".to_string(),
            TokenKind::False => "False".to_string(),
            TokenKind::Plus => "`+`".to_string(),
            TokenKind::Minus => "`-`".to_string(),
            TokenKind::Star => "`*`".to_string(),
            TokenKind::DoubleStar => "`**`".to_string(),
            TokenKind::Slash => "`/`".to_string(),
            TokenKind::DoubleSlash => "`//`".to_string(),
            TokenKind::Percent => "`%`".to_string(),
            TokenKind::Cmp(op) => format!("`{}`", op.symbol()),
            TokenKind::And => "`and`".to_string(),
            TokenKind::Or => "`or`".to_string(),
            TokenKind::Not => "`not`".to_string(),
            TokenKind::In => "`in`".to_string(),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBracket => "`[`".to_string(),
            TokenKind::RBracket => "`]`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_is_informative() {
        assert!(TokenKind::Ident("bs_x".into()).describe().contains("bs_x"));
        assert!(TokenKind::Cmp(CmpOp::Le).describe().contains("<="));
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
