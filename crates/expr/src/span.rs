//! Source spans for parsed expressions.
//!
//! The parser can report, for every node of the [`Expr`](crate::Expr)
//! tree, which byte range of the source text produced it. Spans are kept
//! *outside* the `Expr` itself — in a parallel [`SpanNode`] tree with the
//! same shape — so that structural equality, hashing, and the display
//! round-trip of expressions stay byte-position-independent: two
//! restrictions that differ only in whitespace still compare equal.

/// A half-open byte range `[start, end)` into the source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A tree of spans mirroring the shape of an [`Expr`](crate::Expr) tree.
///
/// The children correspond, in order, to the sub-expressions of the
/// expression node the span belongs to:
///
/// - `Const`/`Var`: no children
/// - `Neg`/`Not`: one child (the operand)
/// - `Binary`: two children (lhs, rhs)
/// - `Compare`: the first operand, then one child per `rest` operand
/// - `And`/`Or`: one child per operand
/// - `In`: the tested value, then one child per set element
/// - `Call`: one child per argument
///
/// Parenthesized groups and unary `+` do not create nodes of their own
/// (the parser unwraps them), so the shapes always match and the two
/// trees can be walked in lockstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The byte range of the whole sub-expression.
    pub span: Span,
    /// Spans of the sub-expressions, in the order documented above.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf span node.
    pub fn leaf(span: Span) -> Self {
        SpanNode {
            span,
            children: Vec::new(),
        }
    }

    /// A span node with children.
    pub fn node(span: Span, children: Vec<SpanNode>) -> Self {
        SpanNode { span, children }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_union_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert_eq!(b.to(a), Span::new(3, 12));
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert!(Span::new(5, 5).is_empty());
    }
}
