//! Abstract syntax tree of constraint expressions.

use at_csp::{CmpOp, Value};
use rustc_hash::FxHashMap;

use crate::error::{ExprError, ExprResult};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
}

impl BinOp {
    /// Apply the operator to two values with Python semantics.
    pub fn apply(&self, a: &Value, b: &Value) -> ExprResult<Value> {
        let result = match self {
            BinOp::Add => a.add(b),
            BinOp::Sub => a.sub(b),
            BinOp::Mul => a.mul(b),
            BinOp::Div => a.div(b),
            BinOp::FloorDiv => a.floordiv(b),
            BinOp::Mod => a.rem(b),
            BinOp::Pow => a.pow(b),
        };
        result.ok_or_else(|| {
            ExprError::Type(format!(
                "cannot apply {:?} to {} and {}",
                self,
                a.type_name(),
                b.type_name()
            ))
        })
    }

    /// Source form of the operator.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
        }
    }
}

/// Built-in functions usable in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinFn {
    /// `min(...)` of two or more arguments.
    Min,
    /// `max(...)` of two or more arguments.
    Max,
    /// `abs(x)`.
    Abs,
}

impl BuiltinFn {
    /// Resolve a function name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "min" => Some(BuiltinFn::Min),
            "max" => Some(BuiltinFn::Max),
            "abs" => Some(BuiltinFn::Abs),
            _ => None,
        }
    }

    /// The source-form name of the function.
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinFn::Min => "min",
            BuiltinFn::Max => "max",
            BuiltinFn::Abs => "abs",
        }
    }
}

/// A constraint expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// A reference to a tunable parameter.
    Var(String),
    /// Unary negation `-x`.
    Neg(Box<Expr>),
    /// Logical negation `not x`.
    Not(Box<Expr>),
    /// Binary arithmetic.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A (possibly chained) comparison: `first op1 e1 op2 e2 ...`.
    Compare {
        /// The leftmost operand.
        first: Box<Expr>,
        /// The remaining `(operator, operand)` pairs, at least one.
        rest: Vec<(CmpOp, Expr)>,
    },
    /// Conjunction of two or more expressions.
    And(Vec<Expr>),
    /// Disjunction of two or more expressions.
    Or(Vec<Expr>),
    /// Membership test `value in [a, b, c]` (or `not in` when negated).
    In {
        /// The tested expression.
        value: Box<Expr>,
        /// The candidate list.
        set: Vec<Expr>,
        /// True for `not in`.
        negated: bool,
    },
    /// A call to a built-in function.
    Call {
        /// The function.
        func: BuiltinFn,
        /// The arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Collect the distinct variable names referenced by the expression, in
    /// order of first appearance.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Expr::Neg(e) | Expr::Not(e) => e.collect_variables(out),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.collect_variables(out);
                rhs.collect_variables(out);
            }
            Expr::Compare { first, rest } => {
                first.collect_variables(out);
                for (_, e) in rest {
                    e.collect_variables(out);
                }
            }
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_variables(out);
                }
            }
            Expr::In { value, set, .. } => {
                value.collect_variables(out);
                for e in set {
                    e.collect_variables(out);
                }
            }
            Expr::Call { args, .. } => {
                for e in args {
                    e.collect_variables(out);
                }
            }
        }
    }

    /// Evaluate the expression under an environment mapping variable names to
    /// values. This reference interpreter defines the semantics that both the
    /// bytecode VM and the recognized specific constraints must reproduce.
    pub fn evaluate(&self, env: &FxHashMap<String, Value>) -> ExprResult<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| ExprError::Type(format!("unbound variable `{name}`"))),
            Expr::Neg(e) => {
                let v = e.evaluate(env)?;
                v.neg()
                    .ok_or_else(|| ExprError::Type(format!("cannot negate {}", v.type_name())))
            }
            Expr::Not(e) => Ok(Value::Bool(!e.evaluate(env)?.truthy())),
            Expr::Binary { op, lhs, rhs } => {
                let a = lhs.evaluate(env)?;
                let b = rhs.evaluate(env)?;
                op.apply(&a, &b)
            }
            Expr::Compare { first, rest } => {
                let mut prev = first.evaluate(env)?;
                for (op, e) in rest {
                    let next = e.evaluate(env)?;
                    if !op.apply(&prev, &next) {
                        return Ok(Value::Bool(false));
                    }
                    prev = next;
                }
                Ok(Value::Bool(true))
            }
            Expr::And(es) => {
                for e in es {
                    if !e.evaluate(env)?.truthy() {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(es) => {
                for e in es {
                    if e.evaluate(env)?.truthy() {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::In {
                value,
                set,
                negated,
            } => {
                let v = value.evaluate(env)?;
                let mut found = false;
                for e in set {
                    if e.evaluate(env)?.py_eq(&v) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Call { func, args } => {
                let mut values = Vec::with_capacity(args.len());
                for a in args {
                    values.push(a.evaluate(env)?);
                }
                apply_builtin(*func, &values)
            }
        }
    }

    /// True when the expression contains no variable references.
    pub fn is_constant(&self) -> bool {
        self.variables().is_empty()
    }

    /// Binding strength of the expression's top-level form, mirroring the
    /// parser's grammar levels (higher binds tighter). Used by [`Display`]
    /// to decide where parentheses are required.
    fn precedence(&self) -> u8 {
        match self {
            Expr::Or(_) => PREC_OR,
            Expr::And(_) => PREC_AND,
            Expr::Not(_) => PREC_NOT,
            Expr::Compare { .. } | Expr::In { .. } => PREC_CMP,
            Expr::Binary {
                op: BinOp::Add | BinOp::Sub,
                ..
            } => PREC_ADD,
            Expr::Binary {
                op: BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod,
                ..
            } => PREC_MUL,
            Expr::Neg(_) => PREC_UNARY,
            Expr::Binary { op: BinOp::Pow, .. } => PREC_POW,
            // A negative numeric literal prints with a leading `-`, so in
            // source form it binds like a unary minus (`-3 ** 2` must not
            // print as the atom-shaped `-3` in the base slot of `**`).
            Expr::Const(Value::Int(i)) if *i < 0 => PREC_UNARY,
            Expr::Const(Value::Float(x)) if *x < 0.0 => PREC_UNARY,
            Expr::Const(_) | Expr::Var(_) | Expr::Call { .. } => PREC_ATOM,
        }
    }

    fn fmt_prec(&self, f: &mut std::fmt::Formatter<'_>, min: u8) -> std::fmt::Result {
        if self.precedence() < min {
            write!(f, "(")?;
            self.fmt_inner(f)?;
            write!(f, ")")
        } else {
            self.fmt_inner(f)
        }
    }

    fn fmt_inner(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Const(v) => fmt_value(f, v),
            Expr::Var(name) => write!(f, "{name}"),
            Expr::Neg(e) => {
                write!(f, "-")?;
                e.fmt_prec(f, PREC_UNARY)
            }
            Expr::Not(e) => {
                write!(f, "not ")?;
                e.fmt_prec(f, PREC_NOT)
            }
            Expr::Binary { op, lhs, rhs } => {
                // Left-associative chains re-parse identically when the
                // right operand sits one level tighter; `**` is
                // right-associative with an atom-only base slot.
                let (lhs_min, rhs_min) = match op {
                    BinOp::Add | BinOp::Sub => (PREC_ADD, PREC_MUL),
                    BinOp::Pow => (PREC_ATOM, PREC_UNARY),
                    _ => (PREC_MUL, PREC_UNARY),
                };
                lhs.fmt_prec(f, lhs_min)?;
                write!(f, " {} ", op.symbol())?;
                rhs.fmt_prec(f, rhs_min)
            }
            Expr::Compare { first, rest } => {
                first.fmt_prec(f, PREC_ADD)?;
                for (op, e) in rest {
                    write!(f, " {} ", op.symbol())?;
                    e.fmt_prec(f, PREC_ADD)?;
                }
                Ok(())
            }
            // Single-operand connectives have no direct source form (the
            // parser unwraps them), but their `Bool` coercion matters at
            // value positions — append the neutral element, which changes
            // neither the result nor the error behaviour.
            Expr::And(es) => match es.len() {
                0 => write!(f, "True"),
                1 => {
                    es[0].fmt_prec(f, PREC_NOT)?;
                    write!(f, " and True")
                }
                _ => {
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " and ")?;
                        }
                        e.fmt_prec(f, PREC_NOT)?;
                    }
                    Ok(())
                }
            },
            Expr::Or(es) => match es.len() {
                0 => write!(f, "False"),
                1 => {
                    es[0].fmt_prec(f, PREC_AND)?;
                    write!(f, " or False")
                }
                _ => {
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " or ")?;
                        }
                        e.fmt_prec(f, PREC_AND)?;
                    }
                    Ok(())
                }
            },
            Expr::In {
                value,
                set,
                negated,
            } => {
                value.fmt_prec(f, PREC_ADD)?;
                write!(f, " {}in [", if *negated { "not " } else { "" })?;
                for (i, e) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, PREC_OR)?;
                }
                write!(f, "]")
            }
            Expr::Call { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, e) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    e.fmt_prec(f, PREC_OR)?;
                }
                write!(f, ")")
            }
        }
    }
}

// Grammar levels for `Display` parenthesization; see `parser.rs`.
const PREC_OR: u8 = 1;
const PREC_AND: u8 = 2;
const PREC_NOT: u8 = 3;
const PREC_CMP: u8 = 4;
const PREC_ADD: u8 = 5;
const PREC_MUL: u8 = 6;
const PREC_UNARY: u8 = 7;
const PREC_POW: u8 = 8;
const PREC_ATOM: u8 = 9;

fn fmt_value(f: &mut std::fmt::Formatter<'_>, v: &Value) -> std::fmt::Result {
    match v {
        Value::Int(i) => write!(f, "{i}"),
        // `{:?}` keeps a decimal point or exponent (`1.0`, `2.5e-3`), both
        // of which the lexer reads back as the same float. Non-finite
        // floats have no source form and fail to re-parse.
        Value::Float(x) => write!(f, "{x:?}"),
        Value::Bool(true) => write!(f, "True"),
        Value::Bool(false) => write!(f, "False"),
        // The lexer has no escape sequences; a string containing both
        // quote kinds has no exact source form (the parser can never
        // produce one from valid input).
        Value::Str(s) => {
            let quote = if s.contains('\'') { '"' } else { '\'' };
            write!(f, "{quote}{s}{quote}")
        }
    }
}

/// Prints the expression as parseable source: for any expression the parser
/// can produce, `parse(&expr.to_string())` returns an identical AST. Forms
/// the parser cannot produce (negative literals from folding, single-operand
/// connectives) print as semantically equivalent source — same value, same
/// error behaviour — under the restriction evaluation convention.
impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// Apply a built-in function to evaluated arguments.
pub fn apply_builtin(func: BuiltinFn, values: &[Value]) -> ExprResult<Value> {
    match func {
        BuiltinFn::Abs => {
            if values.len() != 1 {
                return Err(ExprError::Type("abs() takes exactly one argument".into()));
            }
            match &values[0] {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                Value::Bool(b) => Ok(Value::Int(if *b { 1 } else { 0 })),
                Value::Str(_) => Err(ExprError::Type("abs() of a string".into())),
            }
        }
        BuiltinFn::Min | BuiltinFn::Max => {
            if values.len() < 2 {
                return Err(ExprError::Type(
                    "min()/max() take at least two arguments".into(),
                ));
            }
            let mut best = values[0].clone();
            for v in &values[1..] {
                let ord = v
                    .compare(&best)
                    .ok_or_else(|| ExprError::Type("min()/max() of incomparable values".into()))?;
                let take = if func == BuiltinFn::Min {
                    ord == std::cmp::Ordering::Less
                } else {
                    ord == std::cmp::Ordering::Greater
                };
                if take {
                    best = v.clone();
                }
            }
            Ok(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, i64)]) -> FxHashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Int(*v)))
            .collect()
    }

    #[test]
    fn variables_in_order_of_appearance() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Var("y".into())),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Add,
                lhs: Box::new(Expr::Var("x".into())),
                rhs: Box::new(Expr::Var("y".into())),
            }),
        };
        assert_eq!(e.variables(), vec!["y".to_string(), "x".to_string()]);
    }

    #[test]
    fn evaluate_arithmetic() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Var("x".into())),
            rhs: Box::new(Expr::Const(Value::Int(3))),
        };
        assert_eq!(e.evaluate(&env(&[("x", 4)])).unwrap(), Value::Int(12));
    }

    #[test]
    fn evaluate_chained_comparison() {
        let e = Expr::Compare {
            first: Box::new(Expr::Const(Value::Int(2))),
            rest: vec![
                (CmpOp::Le, Expr::Var("x".into())),
                (CmpOp::Le, Expr::Const(Value::Int(10))),
            ],
        };
        assert_eq!(e.evaluate(&env(&[("x", 5)])).unwrap(), Value::Bool(true));
        assert_eq!(e.evaluate(&env(&[("x", 11)])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn evaluate_bool_ops_shortcircuit_semantics() {
        let e = Expr::And(vec![
            Expr::Const(Value::Bool(false)),
            // would error if evaluated strictly before the `and` decision
            Expr::Binary {
                op: BinOp::Div,
                lhs: Box::new(Expr::Const(Value::Int(1))),
                rhs: Box::new(Expr::Const(Value::Int(0))),
            },
        ]);
        assert_eq!(e.evaluate(&env(&[])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn evaluate_membership() {
        let e = Expr::In {
            value: Box::new(Expr::Var("x".into())),
            set: vec![Expr::Const(Value::Int(1)), Expr::Const(Value::Int(2))],
            negated: false,
        };
        assert_eq!(e.evaluate(&env(&[("x", 2)])).unwrap(), Value::Bool(true));
        assert_eq!(e.evaluate(&env(&[("x", 3)])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn builtins() {
        assert_eq!(
            apply_builtin(BuiltinFn::Min, &[Value::Int(3), Value::Int(1)]).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            apply_builtin(BuiltinFn::Max, &[Value::Int(3), Value::Float(4.5)]).unwrap(),
            Value::Float(4.5)
        );
        assert_eq!(
            apply_builtin(BuiltinFn::Abs, &[Value::Int(-3)]).unwrap(),
            Value::Int(3)
        );
        assert!(apply_builtin(BuiltinFn::Abs, &[Value::str("x")]).is_err());
        assert!(apply_builtin(BuiltinFn::Min, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::Var("missing".into());
        assert!(e.evaluate(&env(&[])).is_err());
    }

    #[test]
    fn display_round_trips_parser_output() {
        for src in [
            "32 <= block_size_x * block_size_y <= 1024",
            "x + y * z",
            "(x + y) * z",
            "a - (b - c)",
            "a - b - c",
            "2 ** 3 ** 2",
            "(2 ** 3) ** 2",
            "-x ** 2",
            "2 ** -x",
            "-(x + y)",
            "not x and y or z",
            "not (x and y or z)",
            "x and (y or z)",
            "not not x",
            "x in [1, 2.5, 'abc']",
            "x not in (1, 2)",
            "min(x, max(y, 2), abs(-z)) == 3",
            "(a < b) == (c < d)",
            "x % 16 == 0 and True",
            "a // b % c * d / e",
            "1e3 < x",
        ] {
            let parsed = crate::parser::parse(src).unwrap();
            let printed = parsed.to_string();
            let reparsed = crate::parser::parse(&printed)
                .unwrap_or_else(|e| panic!("`{src}` printed as unparseable `{printed}`: {e}"));
            assert_eq!(parsed, reparsed, "`{src}` → `{printed}`");
        }
    }

    #[test]
    fn display_of_unparseable_forms_is_semantically_equivalent() {
        let environment = env(&[("x", 3)]);
        // Negative literal in the base slot of `**` (folding can build
        // this): must print parenthesized, not as the atom `-3`.
        let e = Expr::Binary {
            op: BinOp::Pow,
            lhs: Box::new(Expr::Const(Value::Int(-3))),
            rhs: Box::new(Expr::Const(Value::Int(2))),
        };
        let printed = e.to_string();
        let reparsed = crate::parser::parse(&printed).unwrap();
        assert_eq!(
            reparsed.evaluate(&environment).unwrap(),
            e.evaluate(&environment).unwrap(),
            "`{printed}`"
        );
        // Single-operand connective at a value position: the `Bool`
        // coercion must survive printing.
        let e = Expr::Binary {
            op: BinOp::Sub,
            lhs: Box::new(Expr::And(vec![Expr::Var("x".into())])),
            rhs: Box::new(Expr::Const(Value::Int(1))),
        };
        let printed = e.to_string();
        let reparsed = crate::parser::parse(&printed).unwrap();
        assert_eq!(
            reparsed.evaluate(&environment).unwrap(),
            e.evaluate(&environment).unwrap(),
            "`{printed}`"
        );
    }
}
