//! Specific-constraint recognition (Figure 1, step 3).
//!
//! After decomposition, each conjunct is matched against the shapes that the
//! CSP solver has *specific* constraints for: products and (weighted) sums of
//! parameters compared to constants, single-parameter comparisons, pairwise
//! comparisons and membership tests. Recognised conjuncts are turned into the
//! corresponding specific constraint, which unlocks domain preprocessing and
//! early partial rejection in the solver. Everything else falls back to a
//! compiled [`crate::compile::VmConstraint`].

use std::sync::Arc;

use at_csp::{
    CmpOp, ConstraintRef, Divides, ExactProduct, ExactSum, FixedValue, InSet, MaxProduct, MaxSum,
    MinProduct, MinSum, ModuloEquals, NotInSet, PairCompare, Value, VarCompare,
};

use crate::ast::{BinOp, Expr};

/// A recognised (or compiled) constraint with its scope in variable-name form.
#[derive(Clone)]
pub struct RecognizedConstraint {
    /// The constraint object to hand to the solver.
    pub constraint: ConstraintRef,
    /// The parameter names the constraint ranges over, in scope order.
    pub scope: Vec<String>,
    /// Short description, e.g. `MaxProduct(1024)`.
    pub description: String,
}

impl std::fmt::Debug for RecognizedConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecognizedConstraint")
            .field("description", &self.description)
            .field("scope", &self.scope)
            .finish()
    }
}

/// The algebraic shape of one side of a comparison.
#[derive(Debug, Clone, PartialEq)]
enum Shape {
    /// A constant value.
    Const(Value),
    /// `coeff * v1 * v2 * ...` — a product of variables with a constant factor.
    Product {
        coeff: f64,
        vars: Vec<String>,
        /// True only for a literal variable reference, with no arithmetic
        /// around it. Raw (non-numeric) value comparisons are sound only
        /// then: `z != 0` is an ordinary comparison even when `z` is a
        /// string, but `True * z != 0` must *error* (and therefore reject)
        /// on a string, exactly as the interpreter does.
        bare: bool,
    },
    /// `sum(coeff_i * var_i) + offset`.
    Sum {
        terms: Vec<(String, f64)>,
        offset: f64,
    },
    /// Anything else.
    Other,
}

fn classify(expr: &Expr) -> Shape {
    match expr {
        Expr::Const(v) => Shape::Const(v.clone()),
        Expr::Var(name) => Shape::Product {
            coeff: 1.0,
            vars: vec![name.clone()],
            bare: true,
        },
        Expr::Neg(inner) => match classify(inner) {
            Shape::Const(v) => match v.neg() {
                Some(n) => Shape::Const(n),
                None => Shape::Other,
            },
            Shape::Product { coeff, vars, .. } => Shape::Product {
                coeff: -coeff,
                vars,
                bare: false,
            },
            Shape::Sum { terms, offset } => Shape::Sum {
                terms: terms.into_iter().map(|(v, c)| (v, -c)).collect(),
                offset: -offset,
            },
            Shape::Other => Shape::Other,
        },
        Expr::Binary {
            op: BinOp::Mul,
            lhs,
            rhs,
        } => {
            let (a, b) = (classify(lhs), classify(rhs));
            match (a, b) {
                (Shape::Const(c), Shape::Product { coeff, vars, .. })
                | (Shape::Product { coeff, vars, .. }, Shape::Const(c)) => match c.as_f64() {
                    Some(f) => Shape::Product {
                        coeff: coeff * f,
                        vars,
                        bare: false,
                    },
                    None => Shape::Other,
                },
                (
                    Shape::Product {
                        coeff: c1,
                        vars: v1,
                        ..
                    },
                    Shape::Product {
                        coeff: c2,
                        vars: v2,
                        ..
                    },
                ) => {
                    let mut vars = v1;
                    vars.extend(v2);
                    Shape::Product {
                        coeff: c1 * c2,
                        vars,
                        bare: false,
                    }
                }
                (Shape::Const(a), Shape::Const(b)) => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => Shape::Const(Value::Float(x * y)),
                    _ => Shape::Other,
                },
                // A constant times a sum distributes.
                (Shape::Const(c), Shape::Sum { terms, offset })
                | (Shape::Sum { terms, offset }, Shape::Const(c)) => match c.as_f64() {
                    Some(f) => Shape::Sum {
                        terms: terms.into_iter().map(|(v, w)| (v, w * f)).collect(),
                        offset: offset * f,
                    },
                    None => Shape::Other,
                },
                _ => Shape::Other,
            }
        }
        Expr::Binary { op, lhs, rhs } if matches!(op, BinOp::Add | BinOp::Sub) => {
            let sign = if *op == BinOp::Add { 1.0 } else { -1.0 };
            let (a, b) = (as_sum(classify(lhs)), as_sum(classify(rhs)));
            match (a, b) {
                (Some((mut terms, offset_a)), Some((terms_b, offset_b))) => {
                    for (v, w) in terms_b {
                        terms.push((v, w * sign));
                    }
                    Shape::Sum {
                        terms: merge_terms(terms),
                        offset: offset_a + sign * offset_b,
                    }
                }
                _ => Shape::Other,
            }
        }
        _ => Shape::Other,
    }
}

/// View a shape as a weighted sum, if possible.
fn as_sum(shape: Shape) -> Option<(Vec<(String, f64)>, f64)> {
    match shape {
        Shape::Const(v) => v.as_f64().map(|f| (Vec::new(), f)),
        Shape::Product { coeff, vars, .. } if vars.len() == 1 => Some((
            vec![(vars.into_iter().next().expect("one var"), coeff)],
            0.0,
        )),
        Shape::Sum { terms, offset } => Some((terms, offset)),
        _ => None,
    }
}

fn merge_terms(terms: Vec<(String, f64)>) -> Vec<(String, f64)> {
    let mut merged: Vec<(String, f64)> = Vec::with_capacity(terms.len());
    for (v, w) in terms {
        if let Some(entry) = merged.iter_mut().find(|(name, _)| *name == v) {
            entry.1 += w;
        } else {
            merged.push((v, w));
        }
    }
    // Zero-weight terms (`0 * z`, or `z - z` after merging) must stay in
    // the scope: the interpreter still evaluates the erased arithmetic, so
    // a non-numeric value errors — and rejects — where a dropped term
    // would silently accept. The weighted-sum constraints require every
    // scope value to be numeric, preserving exactly that behaviour.
    merged
}

/// Try to recognise a single (already folded, decomposed) conjunct as a
/// specific constraint. Returns `None` when no specific shape applies.
pub fn recognize(expr: &Expr) -> Option<RecognizedConstraint> {
    match expr {
        Expr::Compare { first, rest } if rest.len() == 1 => {
            let (op, rhs) = (&rest[0].0, &rest[0].1);
            recognize_comparison(first, *op, rhs)
        }
        Expr::In {
            value,
            set,
            negated,
        } => {
            let name = match value.as_ref() {
                Expr::Var(n) => n.clone(),
                _ => return None,
            };
            let mut constants = Vec::with_capacity(set.len());
            for e in set {
                match e {
                    Expr::Const(v) => constants.push(v.clone()),
                    _ => return None,
                }
            }
            let description = format!(
                "{}({} values)",
                if *negated { "NotInSet" } else { "InSet" },
                constants.len()
            );
            let constraint: ConstraintRef = if *negated {
                Arc::new(NotInSet::new(constants))
            } else {
                Arc::new(InSet::new(constants))
            };
            Some(RecognizedConstraint {
                constraint,
                scope: vec![name],
                description,
            })
        }
        _ => None,
    }
}

fn recognize_comparison(lhs: &Expr, op: CmpOp, rhs: &Expr) -> Option<RecognizedConstraint> {
    // Divisibility patterns: `a % b == 0` and `a % k == r`.
    if op == CmpOp::Eq {
        if let Some(recognized) = recognize_modulo(lhs, rhs).or_else(|| recognize_modulo(rhs, lhs))
        {
            return Some(recognized);
        }
    }
    let left = classify(lhs);
    let right = classify(rhs);
    match (&left, &right) {
        // constant on the left: mirror the comparison
        (Shape::Const(_), _) if !matches!(right, Shape::Const(_)) => {
            build(right.clone(), op.swap(), constant_of(&left)?)
        }
        (_, Shape::Const(_)) => build(left.clone(), op, constant_of(&right)?),
        // variable-to-variable comparison
        (
            Shape::Product {
                coeff: c1,
                vars: v1,
                bare: true,
            },
            Shape::Product {
                coeff: c2,
                vars: v2,
                bare: true,
            },
        ) if *c1 == 1.0 && *c2 == 1.0 && v1.len() == 1 && v2.len() == 1 => {
            Some(RecognizedConstraint {
                constraint: Arc::new(PairCompare::new(op)),
                scope: vec![v1[0].clone(), v2[0].clone()],
                description: format!("PairCompare({})", op.symbol()),
            })
        }
        _ => None,
    }
}

/// Recognise `modulo_expr == constant` where `modulo_expr` is `var % var`
/// (→ [`Divides`], remainder must be 0) or `var % int` (→ [`ModuloEquals`]).
fn recognize_modulo(modulo_side: &Expr, constant_side: &Expr) -> Option<RecognizedConstraint> {
    let remainder = match constant_side {
        Expr::Const(v) => v.as_i64()?,
        _ => return None,
    };
    if let Expr::Binary {
        op: BinOp::Mod,
        lhs,
        rhs,
    } = modulo_side
    {
        match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(dividend), Expr::Var(divisor)) if remainder == 0 => {
                return Some(RecognizedConstraint {
                    constraint: Arc::new(Divides::new()),
                    scope: vec![dividend.clone(), divisor.clone()],
                    description: format!("Divides({dividend} % {divisor} == 0)"),
                });
            }
            (Expr::Var(name), Expr::Const(modulus)) => {
                let modulus = modulus.as_i64()?;
                if modulus != 0 {
                    return Some(RecognizedConstraint {
                        constraint: Arc::new(ModuloEquals::new(modulus, remainder)),
                        scope: vec![name.clone()],
                        description: format!("ModuloEquals(% {modulus} == {remainder})"),
                    });
                }
            }
            _ => {}
        }
    }
    None
}

fn constant_of(shape: &Shape) -> Option<f64> {
    match shape {
        Shape::Const(v) => v.as_f64(),
        _ => None,
    }
}

/// Build a specific constraint for `shape op constant`.
fn build(shape: Shape, op: CmpOp, constant: f64) -> Option<RecognizedConstraint> {
    match shape {
        // A literal variable reference: plain value comparison. Only sound
        // for *bare* variables — `True * z` also reduces to a unit-coeff
        // product, but its arithmetic errors (and rejects) on non-numeric
        // values where a raw comparison would not.
        Shape::Product {
            coeff,
            ref vars,
            bare: true,
        } if coeff == 1.0 && vars.len() == 1 => {
            let name = vars[0].clone();
            let (constraint, description): (ConstraintRef, String) = if op == CmpOp::Eq {
                (
                    Arc::new(FixedValue::new(float_value(constant))),
                    format!("FixedValue({constant})"),
                )
            } else {
                (
                    Arc::new(VarCompare::new(op, float_value(constant))),
                    format!("VarCompare({} {constant})", op.symbol()),
                )
            };
            Some(RecognizedConstraint {
                constraint,
                scope: vec![name],
                description,
            })
        }
        // Product of two or more variables, a scaled single variable, or a
        // non-bare unit product (`True * z`): all-numeric evaluation, which
        // rejects non-numeric values exactly like the erased arithmetic.
        Shape::Product { coeff, vars, .. } => {
            if coeff == 0.0 {
                return None;
            }
            // coeff * prod(vars) op constant  ⇔  prod(vars) op' constant/coeff
            let limit = constant / coeff;
            let op = if coeff < 0.0 { flip(op) } else { op };
            let (constraint, description): (ConstraintRef, String) = match op {
                CmpOp::Le => (
                    Arc::new(MaxProduct::new(limit)),
                    format!("MaxProduct({limit})"),
                ),
                CmpOp::Lt => (
                    Arc::new(MaxProduct::strict(limit)),
                    format!("MaxProduct(<{limit})"),
                ),
                CmpOp::Ge => (
                    Arc::new(MinProduct::new(limit)),
                    format!("MinProduct({limit})"),
                ),
                CmpOp::Gt => (
                    Arc::new(MinProduct::strict(limit)),
                    format!("MinProduct(>{limit})"),
                ),
                CmpOp::Eq => (
                    Arc::new(ExactProduct::new(limit)),
                    format!("ExactProduct({limit})"),
                ),
                CmpOp::Ne => return None,
            };
            Some(RecognizedConstraint {
                constraint,
                scope: vars,
                description,
            })
        }
        Shape::Sum { terms, offset } => {
            if terms.is_empty() {
                return None;
            }
            let limit = constant - offset;
            let scope: Vec<String> = terms.iter().map(|(v, _)| v.clone()).collect();
            let weights: Vec<f64> = terms.iter().map(|(_, w)| *w).collect();
            let unweighted = weights.iter().all(|&w| w == 1.0);
            let (constraint, description): (ConstraintRef, String) = match op {
                CmpOp::Le | CmpOp::Lt => {
                    let c: ConstraintRef = match (unweighted, op) {
                        (true, CmpOp::Le) => Arc::new(MaxSum::new(limit)),
                        (true, _) => Arc::new(MaxSum::strict(limit)),
                        (false, CmpOp::Le) => Arc::new(MaxSum::weighted(limit, weights)),
                        (false, _) => {
                            // strict weighted: approximate with weighted + strictness via epsilon-free path
                            Arc::new(MaxSum::weighted(limit, weights))
                        }
                    };
                    // A strict weighted sum is rare; keep exactness by refusing it.
                    if op == CmpOp::Lt && !unweighted {
                        return None;
                    }
                    (c, format!("MaxSum({limit})"))
                }
                CmpOp::Ge | CmpOp::Gt => {
                    if op == CmpOp::Gt && !unweighted {
                        return None;
                    }
                    let c: ConstraintRef = match (unweighted, op) {
                        (true, CmpOp::Ge) => Arc::new(MinSum::new(limit)),
                        (true, _) => Arc::new(MinSum::strict(limit)),
                        (false, _) => Arc::new(MinSum::weighted(limit, weights)),
                    };
                    (c, format!("MinSum({limit})"))
                }
                CmpOp::Eq => {
                    let c: ConstraintRef = if unweighted {
                        Arc::new(ExactSum::new(limit))
                    } else {
                        Arc::new(ExactSum::weighted(limit, weights))
                    };
                    (c, format!("ExactSum({limit})"))
                }
                CmpOp::Ne => return None,
            };
            Some(RecognizedConstraint {
                constraint,
                scope,
                description,
            })
        }
        _ => None,
    }
}

fn flip(op: CmpOp) -> CmpOp {
    op.swap()
}

/// Represent a constant limit as an exact integer when possible.
fn float_value(v: f64) -> Value {
    if v.fract() == 0.0 && v.abs() < 9.0e18 {
        Value::Int(v as i64)
    } else {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold;
    use crate::parser::parse;
    use at_csp::value::int_values;

    fn rec(src: &str) -> Option<RecognizedConstraint> {
        recognize(&fold(parse(src).unwrap()))
    }

    #[test]
    fn erased_arithmetic_keeps_error_semantics() {
        // Found by the fuzzer: `True * z != 0` was recognized as the bare
        // comparison `z != 0` (VarCompare), which accepts a string — but
        // the interpreter errors on `True * "half"`, and errors reject.
        // The multiplication must force the numeric path (here: Ne is not
        // expressible as a specific constraint, so recognition refuses and
        // the pipeline falls back to the exact compiled form).
        assert!(rec("True*z != 0").is_none());
        // Same erasure with an order comparison: must become a numeric
        // product constraint that rejects non-numeric values, not a raw
        // VarCompare that would accept them.
        let r = rec("1 * z <= 4").unwrap();
        assert_eq!(r.constraint.kind(), "MaxProduct");
        assert!(r.constraint.evaluate(&int_values([2])));
        assert!(!r.constraint.evaluate(&[Value::str("half")]));
        // And the pairwise form: `True*z == True*w` is not two bare vars.
        assert!(rec("True*z == True*w").is_none());
        // A zero-weight term keeps its variable in scope: `y + False*z`
        // still errors (rejects) on a non-numeric z in the interpreter.
        let r = rec("y + False*z <= 8").unwrap();
        assert_eq!(r.scope, vec!["y", "z"]);
        assert!(r.constraint.evaluate(&int_values([4, 3])));
        assert!(!r.constraint.evaluate(&[Value::Int(4), Value::str("half")]));
        // Bare variables still get the raw comparison.
        let r = rec("z != 0").unwrap();
        assert_eq!(r.constraint.kind(), "VarCompare");
        assert!(r.constraint.evaluate(&[Value::str("half")]));
        let r = rec("z < w").unwrap();
        assert_eq!(r.constraint.kind(), "PairCompare");
    }

    #[test]
    fn recognizes_max_product() {
        let r = rec("block_size_x * block_size_y <= 1024").unwrap();
        assert_eq!(r.constraint.kind(), "MaxProduct");
        assert_eq!(r.scope, vec!["block_size_x", "block_size_y"]);
        assert!(r.constraint.evaluate(&int_values([32, 32])));
        assert!(!r.constraint.evaluate(&int_values([64, 32])));
    }

    #[test]
    fn recognizes_min_product_with_constant_on_left() {
        let r = rec("32 <= block_size_x * block_size_y").unwrap();
        assert_eq!(r.constraint.kind(), "MinProduct");
        assert!(r.constraint.evaluate(&int_values([8, 4])));
        assert!(!r.constraint.evaluate(&int_values([4, 4])));
    }

    #[test]
    fn recognizes_scaled_product() {
        // shared-memory style: 4 bytes per element
        let r = rec("tile_x * tile_y * 4 <= 49152").unwrap();
        assert_eq!(r.constraint.kind(), "MaxProduct");
        assert_eq!(r.scope.len(), 2);
        assert!(r.constraint.evaluate(&int_values([64, 128]))); // 8192 elements
        assert!(!r.constraint.evaluate(&int_values([256, 128]))); // 32768 elements > 12288
    }

    #[test]
    fn recognizes_var_compare_and_fixed_value() {
        let r = rec("block_size_y <= 32").unwrap();
        assert_eq!(r.constraint.kind(), "VarCompare");
        let r = rec("2 <= block_size_y").unwrap();
        assert_eq!(r.constraint.kind(), "VarCompare");
        assert!(r.constraint.evaluate(&int_values([4])));
        assert!(!r.constraint.evaluate(&int_values([1])));
        let r = rec("sh_power == 1").unwrap();
        assert_eq!(r.constraint.kind(), "FixedValue");
    }

    #[test]
    fn recognizes_pair_compare() {
        let r = rec("tile_x <= block_x").unwrap();
        assert_eq!(r.constraint.kind(), "PairCompare");
        assert_eq!(r.scope, vec!["tile_x", "block_x"]);
    }

    #[test]
    fn recognizes_sums() {
        let r = rec("a + b + c <= 16").unwrap();
        assert_eq!(r.constraint.kind(), "MaxSum");
        assert_eq!(r.scope.len(), 3);
        let r = rec("a + b >= 4").unwrap();
        assert_eq!(r.constraint.kind(), "MinSum");
        let r = rec("a + b == 8").unwrap();
        assert_eq!(r.constraint.kind(), "ExactSum");
    }

    #[test]
    fn recognizes_weighted_sum_with_offset() {
        // 2*a + 4*b + 8 <= 40  →  weighted MaxSum with limit 32
        let r = rec("2*a + 4*b + 8 <= 40").unwrap();
        assert_eq!(r.constraint.kind(), "MaxSum");
        assert!(r.constraint.evaluate(&int_values([4, 6]))); // 8+24=32
        assert!(!r.constraint.evaluate(&int_values([5, 6]))); // 34
    }

    #[test]
    fn recognizes_membership() {
        let r = rec("tile in (1, 2, 4)").unwrap();
        assert_eq!(r.constraint.kind(), "InSet");
        let r = rec("mode not in ['a', 'b']").unwrap();
        assert_eq!(r.constraint.kind(), "NotInSet");
    }

    #[test]
    fn subtraction_sum() {
        let r = rec("a - b >= 0").unwrap();
        assert_eq!(r.constraint.kind(), "MinSum");
        assert!(r.constraint.evaluate(&int_values([5, 3])));
        assert!(!r.constraint.evaluate(&int_values([2, 3])));
    }

    #[test]
    fn negative_coefficient_flips_comparison() {
        // -2 * a <= -8  ⇔  a >= 4
        let r = rec("-2 * a <= -8").unwrap();
        assert!(r.constraint.evaluate(&int_values([4])));
        assert!(!r.constraint.evaluate(&int_values([3])));
    }

    #[test]
    fn recognizes_divisibility() {
        let r = rec("a % 16 == 0").unwrap();
        assert_eq!(r.constraint.kind(), "ModuloEquals");
        assert_eq!(r.scope, vec!["a"]);
        assert!(r.constraint.evaluate(&int_values([32])));
        assert!(!r.constraint.evaluate(&int_values([20])));

        let r = rec("a % 4 == 1").unwrap();
        assert_eq!(r.constraint.kind(), "ModuloEquals");
        assert!(r.constraint.evaluate(&int_values([5])));

        let r = rec("tiling % unroll == 0").unwrap();
        assert_eq!(r.constraint.kind(), "Divides");
        assert_eq!(r.scope, vec!["tiling", "unroll"]);
        assert!(r.constraint.evaluate(&int_values([8, 4])));
        assert!(!r.constraint.evaluate(&int_values([8, 3])));

        // reversed constant side
        let r = rec("0 == a % 8").unwrap();
        assert_eq!(r.constraint.kind(), "ModuloEquals");

        // non-zero remainder between two variables stays generic
        assert!(rec("a % b == 1").is_none());
        // modulo by zero stays generic (and evaluates to false at runtime)
        assert!(rec("a % 0 == 0").is_none());
    }

    #[test]
    fn unsupported_shapes_are_not_recognized() {
        assert!(rec("(a + 1) % 16 == 0").is_none());
        assert!(rec("a * b != 8").is_none());
        assert!(rec("a or b").is_none());
        assert!(rec("a * b <= c").is_none());
        assert!(rec("min(a, b) >= 2").is_none());
        assert!(rec("x in [y, 2]").is_none());
    }

    #[test]
    fn duplicate_terms_merge() {
        let r = rec("a + a + b <= 10").unwrap();
        // 2*a + b <= 10
        assert!(r.constraint.evaluate(&int_values([3, 4])));
        assert!(!r.constraint.evaluate(&int_values([4, 4])));
    }
}
