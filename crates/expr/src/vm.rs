//! A small stack-based bytecode VM for constraint evaluation.
//!
//! This is the Rust counterpart of the paper's *dynamic runtime compilation*
//! of `Function` constraints (Section 4.3.2): instead of re-walking the AST
//! for every candidate configuration, the expression is compiled once into a
//! flat instruction sequence that executes against a value stack. Boolean
//! connectives compile to conditional jumps, preserving Python's
//! short-circuit semantics.

use at_csp::{CmpOp, Value};

use crate::ast::{apply_builtin, BinOp, BuiltinFn};
use crate::error::{ExprError, ExprResult};

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Push a constant.
    Const(Value),
    /// Push the value of the scope variable with the given index.
    Load(usize),
    /// Apply a binary arithmetic operator to the top two stack values.
    Binary(BinOp),
    /// Apply a comparison to the top two stack values, pushing a boolean.
    Compare(CmpOp),
    /// Negate the top value arithmetically.
    Neg,
    /// Negate the top value logically.
    Not,
    /// Membership test of the top value against a constant set.
    In {
        /// Allowed values.
        set: Vec<Value>,
        /// True for `not in`.
        negated: bool,
    },
    /// Call a built-in with the given number of arguments.
    Call(BuiltinFn, usize),
    /// If the top of stack is falsy, jump to the target leaving the value;
    /// otherwise pop it and continue (Python's `JUMP_IF_FALSE_OR_POP`).
    JumpIfFalseOrPop(usize),
    /// If the top of stack is truthy, jump to the target leaving the value;
    /// otherwise pop it and continue (Python's `JUMP_IF_TRUE_OR_POP`).
    JumpIfTrueOrPop(usize),
    /// Replace the top of stack with its truthiness as a boolean. Emitted
    /// after every `and`/`or` chain: the jump ops leave the deciding
    /// operand's *raw* value on the stack, while the AST interpreter
    /// defines connectives to yield `Bool` — without this coercion the two
    /// diverge whenever a connective feeds arithmetic or negation.
    ToBool,
}

/// A compiled constraint expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
    arity: usize,
}

impl Program {
    /// Create a program from raw instructions. `arity` is the number of scope
    /// variables the program loads.
    pub fn new(ops: Vec<Op>, arity: usize) -> Self {
        Program { ops, arity }
    }

    /// The instructions.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of scope variables.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Execute the program against the scope values (in scope order).
    pub fn eval(&self, values: &[Value]) -> ExprResult<Value> {
        debug_assert!(values.len() >= self.arity);
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::Const(v) => stack.push(v.clone()),
                Op::Load(i) => stack.push(values[*i].clone()),
                Op::Binary(op) => {
                    let b = stack.pop().ok_or_else(stack_underflow)?;
                    let a = stack.pop().ok_or_else(stack_underflow)?;
                    stack.push(op.apply(&a, &b)?);
                }
                Op::Compare(op) => {
                    let b = stack.pop().ok_or_else(stack_underflow)?;
                    let a = stack.pop().ok_or_else(stack_underflow)?;
                    stack.push(Value::Bool(op.apply(&a, &b)));
                }
                Op::Neg => {
                    let a = stack.pop().ok_or_else(stack_underflow)?;
                    stack.push(a.neg().ok_or_else(|| {
                        ExprError::Type(format!("cannot negate {}", a.type_name()))
                    })?);
                }
                Op::Not => {
                    let a = stack.pop().ok_or_else(stack_underflow)?;
                    stack.push(Value::Bool(!a.truthy()));
                }
                Op::In { set, negated } => {
                    let a = stack.pop().ok_or_else(stack_underflow)?;
                    let found = set.iter().any(|v| v.py_eq(&a));
                    stack.push(Value::Bool(found != *negated));
                }
                Op::Call(func, argc) => {
                    if stack.len() < *argc {
                        return Err(stack_underflow());
                    }
                    let args = stack.split_off(stack.len() - argc);
                    stack.push(apply_builtin(*func, &args)?);
                }
                Op::JumpIfFalseOrPop(target) => {
                    let top = stack.last().ok_or_else(stack_underflow)?;
                    if !top.truthy() {
                        pc = *target;
                        continue;
                    }
                    stack.pop();
                }
                Op::JumpIfTrueOrPop(target) => {
                    let top = stack.last().ok_or_else(stack_underflow)?;
                    if top.truthy() {
                        pc = *target;
                        continue;
                    }
                    stack.pop();
                }
                Op::ToBool => {
                    let v = stack.pop().ok_or_else(stack_underflow)?;
                    stack.push(Value::Bool(v.truthy()));
                }
            }
            pc += 1;
        }
        stack
            .pop()
            .ok_or_else(|| ExprError::Type("program left an empty stack".to_string()))
    }
}

fn stack_underflow() -> ExprError {
    ExprError::Type("VM stack underflow".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;

    #[test]
    fn arithmetic_program() {
        // x * y + 2
        let p = Program::new(
            vec![
                Op::Load(0),
                Op::Load(1),
                Op::Binary(BinOp::Mul),
                Op::Const(Value::Int(2)),
                Op::Binary(BinOp::Add),
            ],
            2,
        );
        assert_eq!(p.eval(&int_values([3, 4])).unwrap(), Value::Int(14));
        assert_eq!(p.arity(), 2);
        assert_eq!(p.ops().len(), 5);
    }

    #[test]
    fn comparison_program() {
        // x <= 10
        let p = Program::new(
            vec![
                Op::Load(0),
                Op::Const(Value::Int(10)),
                Op::Compare(CmpOp::Le),
            ],
            1,
        );
        assert_eq!(p.eval(&int_values([5])).unwrap(), Value::Bool(true));
        assert_eq!(p.eval(&int_values([15])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_and_skips_division_by_zero() {
        // (x != 0) and (10 % x == 0): must not error for x = 0
        let p = Program::new(
            vec![
                Op::Load(0),
                Op::Const(Value::Int(0)),
                Op::Compare(CmpOp::Ne),
                Op::JumpIfFalseOrPop(9),
                Op::Const(Value::Int(10)),
                Op::Load(0),
                Op::Binary(BinOp::Mod),
                Op::Const(Value::Int(0)),
                Op::Compare(CmpOp::Eq),
            ],
            1,
        );
        assert_eq!(p.eval(&int_values([0])).unwrap(), Value::Bool(false));
        assert_eq!(p.eval(&int_values([5])).unwrap(), Value::Bool(true));
        assert_eq!(p.eval(&int_values([3])).unwrap(), Value::Bool(false));
    }

    #[test]
    fn membership_and_builtin() {
        let p = Program::new(
            vec![
                Op::Load(0),
                Op::In {
                    set: int_values([1, 2, 4]),
                    negated: false,
                },
            ],
            1,
        );
        assert_eq!(p.eval(&int_values([4])).unwrap(), Value::Bool(true));
        assert_eq!(p.eval(&int_values([3])).unwrap(), Value::Bool(false));

        let p = Program::new(
            vec![Op::Load(0), Op::Load(1), Op::Call(BuiltinFn::Max, 2)],
            2,
        );
        assert_eq!(p.eval(&int_values([3, 7])).unwrap(), Value::Int(7));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let p = Program::new(
            vec![
                Op::Const(Value::Int(1)),
                Op::Const(Value::Int(0)),
                Op::Binary(BinOp::Div),
            ],
            0,
        );
        assert!(p.eval(&[]).is_err());
    }

    #[test]
    fn type_error_reported() {
        let p = Program::new(vec![Op::Const(Value::str("a")), Op::Neg], 0);
        assert!(p.eval(&[]).is_err());
    }
}
