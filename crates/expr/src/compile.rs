//! Compilation of expressions to VM programs, and the `VmConstraint` adapter
//! that plugs compiled expressions into the CSP solver as (optimized)
//! function constraints.

use std::fmt;

use at_csp::{Constraint, Value};
use rustc_hash::FxHashMap;

use crate::ast::{BuiltinFn, Expr};
use crate::error::{ExprError, ExprResult};
use crate::vm::{Op, Program};

/// Compile an expression against an explicit scope (variable name → load index
/// is the position in `scope`). Every variable used by the expression must be
/// present in `scope`.
pub fn compile(expr: &Expr, scope: &[String]) -> ExprResult<Program> {
    let index: FxHashMap<&str, usize> = scope
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut ops = Vec::new();
    emit(expr, &index, &mut ops)?;
    Ok(Program::new(ops, scope.len()))
}

/// Compile an expression, deriving the scope from the variables it references
/// (in order of first appearance). Returns the program and the scope.
pub fn compile_auto(expr: &Expr) -> ExprResult<(Program, Vec<String>)> {
    let scope = expr.variables();
    let program = compile(expr, &scope)?;
    Ok((program, scope))
}

fn emit(expr: &Expr, index: &FxHashMap<&str, usize>, ops: &mut Vec<Op>) -> ExprResult<()> {
    match expr {
        Expr::Const(v) => ops.push(Op::Const(v.clone())),
        Expr::Var(name) => {
            let i = index.get(name.as_str()).ok_or_else(|| {
                ExprError::Type(format!("variable `{name}` is not in the constraint scope"))
            })?;
            ops.push(Op::Load(*i));
        }
        Expr::Neg(e) => {
            emit(e, index, ops)?;
            ops.push(Op::Neg);
        }
        Expr::Not(e) => {
            emit(e, index, ops)?;
            ops.push(Op::Not);
        }
        Expr::Binary { op, lhs, rhs } => {
            emit(lhs, index, ops)?;
            emit(rhs, index, ops)?;
            ops.push(Op::Binary(*op));
        }
        Expr::Compare { first, rest } => {
            if rest.len() == 1 {
                emit(first, index, ops)?;
                emit(&rest[0].1, index, ops)?;
                ops.push(Op::Compare(rest[0].0));
            } else {
                // A chained comparison is equivalent to the conjunction of its
                // pairwise comparisons (operands are side-effect free here).
                let mut conjuncts = Vec::with_capacity(rest.len());
                let mut prev = (**first).clone();
                for (op, next) in rest {
                    conjuncts.push(Expr::Compare {
                        first: Box::new(prev.clone()),
                        rest: vec![(*op, next.clone())],
                    });
                    prev = next.clone();
                }
                emit(&Expr::And(conjuncts), index, ops)?;
            }
        }
        Expr::And(parts) => {
            emit_bool_chain(parts, true, index, ops)?;
        }
        Expr::Or(parts) => {
            emit_bool_chain(parts, false, index, ops)?;
        }
        Expr::In {
            value,
            set,
            negated,
        } => {
            emit(value, index, ops)?;
            let mut constants = Vec::with_capacity(set.len());
            for e in set {
                match e {
                    Expr::Const(v) => constants.push(v.clone()),
                    other => {
                        return Err(ExprError::Unsupported(format!(
                            "membership sets must contain only constants, found {other:?}"
                        )))
                    }
                }
            }
            ops.push(Op::In {
                set: constants,
                negated: *negated,
            });
        }
        Expr::Call { func, args } => {
            validate_call(*func, args.len())?;
            for a in args {
                emit(a, index, ops)?;
            }
            ops.push(Op::Call(*func, args.len()));
        }
    }
    Ok(())
}

fn validate_call(func: BuiltinFn, argc: usize) -> ExprResult<()> {
    let ok = match func {
        BuiltinFn::Abs => argc == 1,
        BuiltinFn::Min | BuiltinFn::Max => argc >= 2,
    };
    if ok {
        Ok(())
    } else {
        Err(ExprError::Type(format!(
            "wrong number of arguments ({argc}) for {func:?}"
        )))
    }
}

/// Emit a short-circuiting boolean chain. `is_and` selects between `and`
/// (jump on false) and `or` (jump on true).
fn emit_bool_chain(
    parts: &[Expr],
    is_and: bool,
    index: &FxHashMap<&str, usize>,
    ops: &mut Vec<Op>,
) -> ExprResult<()> {
    if parts.is_empty() {
        // `And([])` is vacuously true, `Or([])` vacuously false, matching
        // the interpreter.
        ops.push(Op::Const(at_csp::Value::Bool(is_and)));
        return Ok(());
    }
    let mut jump_sites = Vec::new();
    for (i, part) in parts.iter().enumerate() {
        emit(part, index, ops)?;
        if i + 1 < parts.len() {
            jump_sites.push(ops.len());
            ops.push(if is_and {
                Op::JumpIfFalseOrPop(usize::MAX)
            } else {
                Op::JumpIfTrueOrPop(usize::MAX)
            });
        }
    }
    // All jumps land on the coercion: connectives yield `Bool` (the
    // interpreter's semantics), not the deciding operand's raw value.
    let end = ops.len();
    for site in jump_sites {
        match &mut ops[site] {
            Op::JumpIfFalseOrPop(t) | Op::JumpIfTrueOrPop(t) => *t = end,
            _ => unreachable!("jump site"),
        }
    }
    ops.push(Op::ToBool);
    Ok(())
}

/// A compiled expression usable as a CSP [`Constraint`].
///
/// Evaluation errors (division by zero, type errors) make the constraint
/// evaluate to `false`, matching how the Python tuners treat restrictions
/// that raise for a candidate configuration.
pub struct VmConstraint {
    program: Program,
    source: String,
}

impl VmConstraint {
    /// Wrap a compiled program. `source` is kept for diagnostics.
    pub fn new(program: Program, source: impl Into<String>) -> Self {
        VmConstraint {
            program,
            source: source.into(),
        }
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The compiled program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}

impl fmt::Debug for VmConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VmConstraint")
            .field("source", &self.source)
            .field("arity", &self.program.arity())
            .finish()
    }
}

impl Constraint for VmConstraint {
    fn kind(&self) -> &'static str {
        "CompiledFunction"
    }

    fn evaluate(&self, values: &[Value]) -> bool {
        match self.program.eval(values) {
            Ok(v) => v.truthy(),
            Err(_) => false,
        }
    }

    fn is_specific(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::fold;
    use crate::parser::parse;
    use at_csp::value::int_values;

    fn compile_src(src: &str) -> (Program, Vec<String>) {
        compile_auto(&fold(parse(src).unwrap())).unwrap()
    }

    #[test]
    fn compiled_matches_interpreter() {
        let sources = [
            "32 <= x * y <= 1024",
            "x % 16 == 0 and y % 2 == 0",
            "x == 0 or y % x == 0",
            "not (x > y)",
            "x in [1, 2, 4, 8] and y not in (3, 5)",
            "min(x, y) >= 2",
            "abs(x - y) <= 4",
            "x ** 2 + y ** 2 <= 100",
            "x // 2 == y",
        ];
        for src in sources {
            let expr = fold(parse(src).unwrap());
            let (program, scope) = compile_auto(&expr).unwrap();
            for x in 0..6i64 {
                for y in 1..6i64 {
                    let env: FxHashMap<String, Value> = [
                        ("x".to_string(), Value::Int(x)),
                        ("y".to_string(), Value::Int(y)),
                    ]
                    .into_iter()
                    .collect();
                    let expected = expr.evaluate(&env).map(|v| v.truthy());
                    let values: Vec<Value> =
                        scope.iter().map(|n| env.get(n).unwrap().clone()).collect();
                    let got = program.eval(&values).map(|v| v.truthy());
                    match (expected, got) {
                        (Ok(a), Ok(b)) => assert_eq!(a, b, "{src} x={x} y={y}"),
                        (Err(_), Err(_)) => {}
                        (a, b) => panic!("{src}: interpreter {a:?} vs vm {b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn connectives_yield_booleans_not_raw_operands() {
        // Found by the fuzzer: the jump ops leave the deciding operand's
        // raw value on the stack, so without the trailing coercion
        // `-(y or ...)` negated a string in the VM while the interpreter
        // negated `Bool(true)`.
        let expr = fold(parse("-(y or x > 0)").unwrap());
        let (program, scope) = compile_auto(&expr).unwrap();
        let env: FxHashMap<String, Value> = [
            ("y".to_string(), Value::str("half")),
            ("x".to_string(), Value::Int(1)),
        ]
        .into_iter()
        .collect();
        let values: Vec<Value> = scope.iter().map(|n| env[n].clone()).collect();
        assert_eq!(expr.evaluate(&env).unwrap(), Value::Int(-1));
        assert_eq!(program.eval(&values).unwrap(), Value::Int(-1));
        // Short-circuit and fall-through paths both coerce.
        let (program, scope) = compile_auto(&fold(parse("(x and y) + 1").unwrap())).unwrap();
        let values: Vec<Value> = scope.iter().map(|n| env[n].clone()).collect();
        assert_eq!(program.eval(&values).unwrap(), Value::Int(2));
    }

    #[test]
    fn empty_connectives_compile_to_their_identity() {
        let (and_prog, _) = compile_auto(&Expr::And(Vec::new())).unwrap();
        assert_eq!(and_prog.eval(&[]).unwrap(), Value::Bool(true));
        let (or_prog, _) = compile_auto(&Expr::Or(Vec::new())).unwrap();
        assert_eq!(or_prog.eval(&[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn scope_order_is_first_appearance() {
        let (_, scope) = compile_src("y * x <= 10 and x > 1");
        assert_eq!(scope, vec!["y".to_string(), "x".to_string()]);
    }

    #[test]
    fn vm_constraint_adapter() {
        let (program, scope) = compile_src("x * y >= 32");
        assert_eq!(scope.len(), 2);
        let c = VmConstraint::new(program, "x * y >= 32");
        assert!(c.evaluate(&int_values([8, 4])));
        assert!(!c.evaluate(&int_values([2, 4])));
        assert!(!c.is_specific());
        assert_eq!(c.kind(), "CompiledFunction");
        assert_eq!(c.source(), "x * y >= 32");
        assert!(format!("{c:?}").contains("x * y"));
    }

    #[test]
    fn evaluation_error_means_false() {
        let (program, _) = compile_src("10 % x == 0");
        let c = VmConstraint::new(program, "10 % x == 0");
        assert!(!c.evaluate(&int_values([0])));
        assert!(c.evaluate(&int_values([5])));
    }

    #[test]
    fn unknown_scope_variable_errors() {
        let expr = fold(parse("x + y > 3").unwrap());
        assert!(compile(&expr, &["x".to_string()]).is_err());
    }

    #[test]
    fn dynamic_membership_set_unsupported() {
        let expr = fold(parse("x in [y, 2]").unwrap());
        assert!(matches!(
            compile_auto(&expr),
            Err(ExprError::Unsupported(_))
        ));
    }
}
