//! The end-to-end constraint parsing pipeline of Figure 1:
//!
//! 1. parse the user-written Python-style restriction string,
//! 2. constant-fold,
//! 3. decompose into minimal-scope conjuncts,
//! 4. recognise specific constraints where possible,
//! 5. compile the remainder to bytecode `Function` constraints.
//!
//! Two entry points are provided: [`parse_restriction`] runs the full
//! optimizing pipeline, [`parse_restriction_generic`] skips steps 2–4 and
//! produces a single compiled function constraint over all referenced
//! parameters — the lowering used for the `original` / `brute-force` baseline
//! series in the paper's evaluation.

use std::sync::Arc;

use at_csp::ConstraintRef;

use crate::ast::Expr;
use crate::compile::{compile, VmConstraint};
use crate::decompose::decompose;
use crate::error::{ExprError, ExprResult};
use crate::fold::fold;
use crate::parser::parse;
use crate::recognize::{recognize, RecognizedConstraint};

/// The result of parsing one restriction string.
#[derive(Debug, Clone, Default)]
pub struct ParsedRestriction {
    /// The original source text.
    pub source: String,
    /// The constraints the restriction decomposed into.
    pub constraints: Vec<RecognizedConstraint>,
    /// True when the restriction folded to a constant `False`: the search
    /// space is empty regardless of parameter values.
    pub always_false: bool,
}

impl ParsedRestriction {
    /// True when the restriction folded to a constant `True` (no constraints).
    pub fn is_trivial(&self) -> bool {
        !self.always_false && self.constraints.is_empty()
    }

    /// Number of specific (non-function) constraints produced.
    pub fn specific_count(&self) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.constraint.is_specific())
            .count()
    }
}

/// Run the full optimizing pipeline on a restriction string.
pub fn parse_restriction(source: &str) -> ExprResult<ParsedRestriction> {
    let expr = fold(parse(source)?);
    restriction_from_expr(expr, source)
}

/// Build a [`ParsedRestriction`] from an already parsed (and possibly folded)
/// expression.
pub fn restriction_from_expr(expr: Expr, source: &str) -> ExprResult<ParsedRestriction> {
    if let Expr::Const(v) = &expr {
        return Ok(ParsedRestriction {
            source: source.to_string(),
            constraints: Vec::new(),
            always_false: !v.truthy(),
        });
    }
    let mut constraints = Vec::new();
    let mut always_false = false;
    for piece in decompose(expr) {
        if let Expr::Const(v) = &piece {
            if !v.truthy() {
                always_false = true;
            }
            continue;
        }
        if let Some(recognized) = recognize(&piece) {
            constraints.push(recognized);
            continue;
        }
        // Fallback: compile the conjunct to a bytecode function constraint.
        let scope = piece.variables();
        if scope.is_empty() {
            return Err(ExprError::Unsupported(format!(
                "conjunct of `{source}` references no parameters and is not constant"
            )));
        }
        let program = compile(&piece, &scope)?;
        let constraint: ConstraintRef = Arc::new(VmConstraint::new(program, source));
        constraints.push(RecognizedConstraint {
            constraint,
            scope,
            description: "CompiledFunction".to_string(),
        });
    }
    Ok(ParsedRestriction {
        source: source.to_string(),
        constraints,
        always_false,
    })
}

/// Parse a restriction string into a *single* compiled function constraint
/// over all referenced parameters, without folding, decomposition or
/// recognition (the unoptimized baseline lowering).
pub fn parse_restriction_generic(source: &str) -> ExprResult<ParsedRestriction> {
    let expr = parse(source)?;
    if let Expr::Const(v) = &expr {
        return Ok(ParsedRestriction {
            source: source.to_string(),
            constraints: Vec::new(),
            always_false: !v.truthy(),
        });
    }
    let scope = expr.variables();
    if scope.is_empty() {
        // Constant expression that is not a literal (e.g. `1 < 2`): evaluate.
        let env = rustc_hash::FxHashMap::default();
        let value = expr.evaluate(&env)?;
        return Ok(ParsedRestriction {
            source: source.to_string(),
            constraints: Vec::new(),
            always_false: !value.truthy(),
        });
    }
    let program = compile(&expr, &scope)?;
    let constraint: ConstraintRef = Arc::new(VmConstraint::new(program, source));
    Ok(ParsedRestriction {
        source: source.to_string(),
        constraints: vec![RecognizedConstraint {
            constraint,
            scope,
            description: "CompiledFunction".to_string(),
        }],
        always_false: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::value::int_values;
    use at_csp::Value;
    use rustc_hash::FxHashMap;

    #[test]
    fn figure1_pipeline_produces_four_specific_constraints() {
        let r = parse_restriction("2 <= block_size_y <= 32 <= block_size_x * block_size_y <= 1024")
            .unwrap();
        assert_eq!(r.constraints.len(), 4);
        assert_eq!(r.specific_count(), 4);
        let kinds: Vec<&str> = r.constraints.iter().map(|c| c.constraint.kind()).collect();
        assert_eq!(
            kinds,
            vec!["VarCompare", "VarCompare", "MinProduct", "MaxProduct"]
        );
    }

    #[test]
    fn listing2_constraint_decomposes_to_min_and_max_product() {
        let r = parse_restriction("32 <= block_size_x*block_size_y <= 1024").unwrap();
        assert_eq!(r.constraints.len(), 2);
        let kinds: Vec<&str> = r.constraints.iter().map(|c| c.constraint.kind()).collect();
        assert!(kinds.contains(&"MinProduct"));
        assert!(kinds.contains(&"MaxProduct"));
    }

    #[test]
    fn unrecognized_conjunct_compiles_to_function() {
        let r = parse_restriction("min(x, y) >= 2 and x * y <= 256").unwrap();
        assert_eq!(r.constraints.len(), 2);
        assert_eq!(r.specific_count(), 1);
        let function = r
            .constraints
            .iter()
            .find(|c| !c.constraint.is_specific())
            .unwrap();
        assert_eq!(function.scope, vec!["x".to_string(), "y".to_string()]);
        assert!(function.constraint.evaluate(&int_values([32, 2])));
        assert!(!function.constraint.evaluate(&int_values([1, 8])));
    }

    #[test]
    fn divisibility_conjuncts_become_specific_constraints() {
        let r = parse_restriction("x % 16 == 0 and x % y == 0").unwrap();
        assert_eq!(r.constraints.len(), 2);
        assert_eq!(r.specific_count(), 2);
        let kinds: Vec<&str> = r.constraints.iter().map(|c| c.constraint.kind()).collect();
        assert!(kinds.contains(&"ModuloEquals"));
        assert!(kinds.contains(&"Divides"));
    }

    #[test]
    fn trivial_and_impossible_restrictions() {
        let r = parse_restriction("1 < 2").unwrap();
        assert!(r.is_trivial());
        let r = parse_restriction("2 < 1").unwrap();
        assert!(r.always_false);
        let r = parse_restriction("x > 1 and 2 < 1").unwrap();
        assert!(r.always_false);
    }

    #[test]
    fn generic_lowering_is_one_constraint() {
        let src = "2 <= y <= 32 <= x * y <= 1024 and x % 2 == 0";
        let r = parse_restriction_generic(src).unwrap();
        assert_eq!(r.constraints.len(), 1);
        assert_eq!(r.specific_count(), 0);
        assert_eq!(
            r.constraints[0].scope,
            vec!["y".to_string(), "x".to_string()]
        );
    }

    #[test]
    fn optimized_and_generic_lowerings_agree() {
        let sources = [
            "32 <= x * y <= 1024",
            "x % 16 == 0 and y >= 2",
            "x == 0 or y % 4 == 0",
            "2 <= y <= 32 <= x * y <= 1024",
            "x * y * 4 <= 2048 and x + y <= 96",
            "x in [1, 2, 4, 8, 16] and y not in (3, 5)",
        ];
        for src in sources {
            let opt = parse_restriction(src).unwrap();
            let gen = parse_restriction_generic(src).unwrap();
            for x in [0i64, 1, 2, 3, 4, 8, 16, 31, 32, 64] {
                for y in [1i64, 2, 3, 4, 5, 16, 32, 33] {
                    let env: FxHashMap<String, Value> = [
                        ("x".to_string(), Value::Int(x)),
                        ("y".to_string(), Value::Int(y)),
                    ]
                    .into_iter()
                    .collect();
                    let eval = |r: &ParsedRestriction| -> bool {
                        if r.always_false {
                            return false;
                        }
                        r.constraints.iter().all(|c| {
                            let values: Vec<Value> =
                                c.scope.iter().map(|n| env[n].clone()).collect();
                            c.constraint.evaluate(&values)
                        })
                    };
                    assert_eq!(eval(&opt), eval(&gen), "{src} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(parse_restriction("x >").is_err());
        assert!(parse_restriction_generic("x $ y").is_err());
    }
}
