//! Lexer for constraint expressions.

use at_csp::CmpOp;

use crate::error::{ExprError, ExprResult};
use crate::token::{Token, TokenKind};

/// Tokenize `source` into a vector of tokens ending with [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> ExprResult<Vec<Token>> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            '[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            ']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            '+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            '-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            '%' => {
                tokens.push(Token {
                    kind: TokenKind::Percent,
                    position: start,
                    end: start + 1,
                });
                i += 1;
            }
            '*' => {
                if bytes.get(i + 1) == Some(&b'*') {
                    tokens.push(Token {
                        kind: TokenKind::DoubleStar,
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Star,
                        position: start,
                        end: start + 1,
                    });
                    i += 1;
                }
            }
            '/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    tokens.push(Token {
                        kind: TokenKind::DoubleSlash,
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        position: start,
                        end: start + 1,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Le),
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Lt),
                        position: start,
                        end: start + 1,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Ge),
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Gt),
                        position: start,
                        end: start + 1,
                    });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Eq),
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    return Err(ExprError::Lex {
                        message: "single `=` is not a comparison; use `==`".to_string(),
                        position: start,
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Cmp(CmpOp::Ne),
                        position: start,
                        end: start + 2,
                    });
                    i += 2;
                } else {
                    return Err(ExprError::Lex {
                        message: "unexpected `!`".to_string(),
                        position: start,
                    });
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ExprError::Lex {
                        message: "unterminated string literal".to_string(),
                        position: start,
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(source[i + 1..j].to_string()),
                    position: start,
                    end: j + 1,
                });
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() || d == '_' {
                        j += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        j += 1;
                    } else if (d == 'e' || d == 'E')
                        && j + 1 < bytes.len()
                        && ((bytes[j + 1] as char).is_ascii_digit()
                            || bytes[j + 1] == b'+'
                            || bytes[j + 1] == b'-')
                    {
                        is_float = true;
                        j += 2;
                    } else {
                        break;
                    }
                }
                let text: String = source[i..j].chars().filter(|&c| c != '_').collect();
                let kind = if is_float {
                    TokenKind::Float(text.parse::<f64>().map_err(|e| ExprError::Lex {
                        message: format!("bad float literal `{text}`: {e}"),
                        position: start,
                    })?)
                } else {
                    TokenKind::Int(text.parse::<i64>().map_err(|e| ExprError::Lex {
                        message: format!("bad integer literal `{text}`: {e}"),
                        position: start,
                    })?)
                };
                tokens.push(Token {
                    kind,
                    position: start,
                    end: j,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &source[i..j];
                let kind = match word {
                    "and" => TokenKind::And,
                    "or" => TokenKind::Or,
                    "not" => TokenKind::Not,
                    "in" => TokenKind::In,
                    "True" => TokenKind::True,
                    "False" => TokenKind::False,
                    _ => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    kind,
                    position: start,
                    end: j,
                });
                i = j;
            }
            other => {
                return Err(ExprError::Lex {
                    message: format!("unexpected character `{other}`"),
                    position: start,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        position: source.len(),
        end: source.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_listing2_constraint() {
        let k = kinds("32 <= block_size_x*block_size_y <= 1024");
        assert_eq!(
            k,
            vec![
                TokenKind::Int(32),
                TokenKind::Cmp(CmpOp::Le),
                TokenKind::Ident("block_size_x".into()),
                TokenKind::Star,
                TokenKind::Ident("block_size_y".into()),
                TokenKind::Cmp(CmpOp::Le),
                TokenKind::Int(1024),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let k = kinds("a ** 2 // 3 % 4 != 5 == 6 > 7 >= 8 < 9");
        assert!(k.contains(&TokenKind::DoubleStar));
        assert!(k.contains(&TokenKind::DoubleSlash));
        assert!(k.contains(&TokenKind::Percent));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Ne)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Eq)));
        assert!(k.contains(&TokenKind::Cmp(CmpOp::Ge)));
    }

    #[test]
    fn lexes_keywords_and_literals() {
        let k = kinds("x in [1, 2.5, 'abc'] and not True or False");
        assert!(k.contains(&TokenKind::In));
        assert!(k.contains(&TokenKind::And));
        assert!(k.contains(&TokenKind::Not));
        assert!(k.contains(&TokenKind::Or));
        assert!(k.contains(&TokenKind::True));
        assert!(k.contains(&TokenKind::False));
        assert!(k.contains(&TokenKind::Float(2.5)));
        assert!(k.contains(&TokenKind::Str("abc".into())));
    }

    #[test]
    fn underscores_in_numbers() {
        assert_eq!(kinds("1_000")[0], TokenKind::Int(1000));
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
    }

    #[test]
    fn token_spans_cover_the_source() {
        let toks = tokenize("32 <= block_size_x * 'ab'").unwrap();
        let spans: Vec<(usize, usize)> = toks.iter().map(|t| (t.position, t.end)).collect();
        assert_eq!(
            spans,
            vec![(0, 2), (3, 5), (6, 18), (19, 20), (21, 25), (25, 25)]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("a = 3").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a $ b").is_err());
    }
}
