//! Errors produced while parsing or compiling constraint expressions.

use std::fmt;

/// Errors from the constraint expression pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// The lexer met an unexpected character.
    Lex {
        /// Explanation.
        message: String,
        /// Byte offset in the source.
        position: usize,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Explanation.
        message: String,
        /// Byte offset in the source.
        position: usize,
    },
    /// The expression uses a feature the compiler does not support.
    Unsupported(String),
    /// A type error detected at compile or evaluation time.
    Type(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Lex { message, position } => {
                write!(f, "lex error at byte {position}: {message}")
            }
            ExprError::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            ExprError::Unsupported(m) => write!(f, "unsupported expression: {m}"),
            ExprError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Result alias for expression operations.
pub type ExprResult<T> = Result<T, ExprError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ExprError::Parse {
            message: "unexpected token".into(),
            position: 4,
        };
        assert!(e.to_string().contains("byte 4"));
        assert!(ExprError::Unsupported("x".into()).to_string().contains("x"));
    }
}
