//! Recursive descent parser with Python operator precedence.
//!
//! Grammar (highest precedence last):
//!
//! ```text
//! expr        := or_expr
//! or_expr     := and_expr ("or" and_expr)*
//! and_expr    := not_expr ("and" not_expr)*
//! not_expr    := "not" not_expr | comparison
//! comparison  := arith (( "<" | "<=" | ">" | ">=" | "==" | "!=" ) arith)*
//!              | arith ("not")? "in" collection
//! arith       := term (("+" | "-") term)*
//! term        := factor (("*" | "/" | "//" | "%") factor)*
//! factor      := ("-" | "+") factor | power
//! power       := atom ("**" factor)?
//! atom        := INT | FLOAT | STR | "True" | "False" | IDENT
//!              | IDENT "(" args ")" | "(" expr ")" | collection
//! collection  := "[" expr ("," expr)* "]" | "(" expr ("," expr)+ ")"
//! ```
//!
//! Every production also tracks the byte [`Span`] of the sub-expression
//! it builds; [`parse_spanned`] returns the resulting [`SpanNode`] tree
//! (same shape as the `Expr` tree) alongside the expression, while
//! [`parse`] discards it.

use at_csp::Value;

use crate::ast::{BinOp, BuiltinFn, Expr};
use crate::error::{ExprError, ExprResult};
use crate::lexer::tokenize;
use crate::span::{Span, SpanNode};
use crate::token::{Token, TokenKind};

/// Maximum expression nesting depth the parser accepts.
///
/// Recursive descent recurses once per nesting level (`(`, `not`, unary
/// signs, call arguments), and the produced `Expr` tree is walked
/// recursively by every later stage (folding, compilation, `Drop`). An
/// unbounded depth would let a short hostile input — `((((…` — overflow
/// the stack as an uncatchable process abort, so depth is capped here,
/// where the overflow would first occur, and reported as an ordinary
/// [`ExprError::Parse`]. 100 levels is far beyond any real restriction
/// (the paper workloads nest < 20) while keeping the deepest recursive
/// walk — including the span bookkeeping, whose per-level cost in
/// unoptimized builds is what sizes this cap — well within a default
/// thread stack.
const MAX_DEPTH: usize = 100;

/// A parsed sub-expression together with its (boxed, to keep parser
/// stack frames small) span tree.
type Sp = (Expr, Box<SpanNode>);

/// Parse a constraint expression.
pub fn parse(source: &str) -> ExprResult<Expr> {
    parse_spanned(source).map(|(expr, _)| expr)
}

/// Parse a constraint expression, also returning the byte-span tree.
///
/// The [`SpanNode`] tree has exactly the shape of the returned [`Expr`]
/// tree (see [`SpanNode`] for the child ordering), so diagnostics can
/// walk both in lockstep and point at the offending source bytes.
pub fn parse_spanned(source: &str) -> ExprResult<(Expr, SpanNode)> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let (expr, spans) = parser.parse_or()?;
    parser.expect_eof()?;
    Ok((expr, *spans))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression nesting depth (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser {
    /// Enter one nesting level; errors beyond [`MAX_DEPTH`]. Every
    /// recursion cycle in the grammar passes through a guarded production
    /// (`parse_or`, `parse_not`, `parse_factor`), so the parser's own
    /// stack usage — and the depth of the tree it builds — is bounded.
    fn enter(&mut self) -> ExprResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ExprError::Parse {
                message: format!("expression nesting exceeds {MAX_DEPTH} levels"),
                position: self.position(),
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    /// Span of the token at the cursor.
    fn current_span(&self) -> Span {
        let tok = &self.tokens[self.pos];
        Span::new(tok.position, tok.end)
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        self.tokens[self.pos.saturating_sub(1)].end
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> ExprResult<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                position: self.position(),
            })
        }
    }

    fn expect_eof(&mut self) -> ExprResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!("unexpected trailing {}", self.peek().describe()),
                position: self.position(),
            })
        }
    }

    fn parse_or(&mut self) -> ExprResult<Sp> {
        self.enter()?;
        let result = (|| {
            let first = self.parse_and()?;
            let mut parts = vec![first];
            while self.eat(&TokenKind::Or) {
                parts.push(self.parse_and()?);
            }
            Ok(connective(parts, Expr::Or))
        })();
        self.leave();
        result
    }

    fn parse_and(&mut self) -> ExprResult<Sp> {
        let first = self.parse_not()?;
        let mut parts = vec![first];
        while self.eat(&TokenKind::And) {
            parts.push(self.parse_not()?);
        }
        Ok(connective(parts, Expr::And))
    }

    fn parse_not(&mut self) -> ExprResult<Sp> {
        let start = self.position();
        if self.eat(&TokenKind::Not) {
            self.enter()?;
            let inner = self.parse_not();
            self.leave();
            let (expr, node) = inner?;
            let span = Span::new(start, node.span.end);
            Ok((
                Expr::Not(Box::new(expr)),
                Box::new(SpanNode::node(span, vec![*node])),
            ))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> ExprResult<Sp> {
        let (first, first_node) = self.parse_arith()?;
        // Membership test?
        if matches!(self.peek(), TokenKind::In)
            || (matches!(self.peek(), TokenKind::Not)
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::In)
                ))
        {
            let negated = self.eat(&TokenKind::Not);
            self.expect(&TokenKind::In)?;
            let (set, set_span) = self.parse_collection()?;
            let span = Span::new(first_node.span.start, set_span.end);
            let mut children = vec![*first_node];
            let mut set_exprs = Vec::with_capacity(set.len());
            for (expr, node) in set {
                set_exprs.push(expr);
                children.push(*node);
            }
            return Ok((
                Expr::In {
                    value: Box::new(first),
                    set: set_exprs,
                    negated,
                },
                Box::new(SpanNode::node(span, children)),
            ));
        }
        let mut rest = Vec::new();
        let mut nodes = vec![*first_node];
        while let TokenKind::Cmp(op) = self.peek() {
            let op = *op;
            self.advance();
            let (rhs, rhs_node) = self.parse_arith()?;
            rest.push((op, rhs));
            nodes.push(*rhs_node);
        }
        if rest.is_empty() {
            Ok((first, Box::new(nodes.pop().expect("one element"))))
        } else {
            let span = nodes[0]
                .span
                .to(nodes.last().expect("at least two operands").span);
            Ok((
                Expr::Compare {
                    first: Box::new(first),
                    rest,
                },
                Box::new(SpanNode::node(span, nodes)),
            ))
        }
    }

    /// Parse a bracketed or parenthesized collection; the returned span
    /// covers the brackets themselves.
    fn parse_collection(&mut self) -> ExprResult<(Vec<Sp>, Span)> {
        let open_start = self.position();
        let (open, close) = match self.peek() {
            TokenKind::LBracket => (TokenKind::LBracket, TokenKind::RBracket),
            TokenKind::LParen => (TokenKind::LParen, TokenKind::RParen),
            other => {
                return Err(ExprError::Parse {
                    message: format!(
                        "expected a list or tuple after `in`, found {}",
                        other.describe()
                    ),
                    position: self.position(),
                })
            }
        };
        self.expect(&open)?;
        let mut items = Vec::new();
        if self.peek() != &close {
            loop {
                items.push(self.parse_or()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                // allow trailing comma
                if self.peek() == &close {
                    break;
                }
            }
        }
        self.expect(&close)?;
        Ok((items, Span::new(open_start, self.prev_end())))
    }

    fn parse_arith(&mut self) -> ExprResult<Sp> {
        let lhs = self.parse_term()?;
        self.parse_left_chain(lhs, |kind| match kind {
            TokenKind::Plus => Some(BinOp::Add),
            TokenKind::Minus => Some(BinOp::Sub),
            _ => None,
        })
    }

    fn parse_term(&mut self) -> ExprResult<Sp> {
        let lhs = self.parse_factor()?;
        self.parse_left_chain(lhs, |kind| match kind {
            TokenKind::Star => Some(BinOp::Mul),
            TokenKind::Slash => Some(BinOp::Div),
            TokenKind::DoubleSlash => Some(BinOp::FloorDiv),
            TokenKind::Percent => Some(BinOp::Mod),
            _ => None,
        })
    }

    /// Parse a left-associative operator chain. The loop itself is
    /// iterative, but each link nests the accumulated left-hand side one
    /// level deeper — `1 + 1 + … + 1` builds a tree as deep as the chain
    /// is long, and every later recursive walk (folding, evaluation,
    /// `Drop`) descends it. Chain links therefore count against
    /// [`MAX_DEPTH`] like any other nesting.
    fn parse_left_chain(
        &mut self,
        mut lhs: Sp,
        op_of: impl Fn(&TokenKind) -> Option<BinOp>,
    ) -> ExprResult<Sp> {
        let mut levels = 0usize;
        let result = loop {
            let Some(op) = op_of(self.peek()) else {
                break Ok(lhs);
            };
            if let Err(e) = self.enter() {
                break Err(e);
            }
            levels += 1;
            self.advance();
            match self.parse_term_or_factor(op) {
                Ok((rhs, rhs_node)) => {
                    let (lhs_expr, lhs_node) = lhs;
                    let span = lhs_node.span.to(rhs_node.span);
                    lhs = (
                        Expr::Binary {
                            op,
                            lhs: Box::new(lhs_expr),
                            rhs: Box::new(rhs),
                        },
                        Box::new(SpanNode::node(span, vec![*lhs_node, *rhs_node])),
                    );
                }
                Err(e) => break Err(e),
            }
        };
        for _ in 0..levels {
            self.leave();
        }
        result
    }

    /// The right-hand production of one chain link: `+`/`-` chain over
    /// terms, `*`-family chain over factors.
    fn parse_term_or_factor(&mut self, op: BinOp) -> ExprResult<Sp> {
        if matches!(op, BinOp::Add | BinOp::Sub) {
            self.parse_term()
        } else {
            self.parse_factor()
        }
    }

    fn parse_factor(&mut self) -> ExprResult<Sp> {
        let start = self.position();
        if self.eat(&TokenKind::Minus) {
            self.enter()?;
            let inner = self.parse_factor();
            self.leave();
            let (expr, node) = inner?;
            let span = Span::new(start, node.span.end);
            return Ok((
                Expr::Neg(Box::new(expr)),
                Box::new(SpanNode::node(span, vec![*node])),
            ));
        }
        if self.eat(&TokenKind::Plus) {
            self.enter()?;
            let inner = self.parse_factor();
            self.leave();
            // Unary `+` is a no-op and creates no tree node.
            return inner;
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> ExprResult<Sp> {
        let (base, base_node) = self.parse_atom()?;
        if self.eat(&TokenKind::DoubleStar) {
            // Right associative, and `-` binds tighter on the exponent side.
            self.enter()?;
            let exponent = self.parse_factor();
            self.leave();
            let (exp_expr, exp_node) = exponent?;
            let span = base_node.span.to(exp_node.span);
            return Ok((
                Expr::Binary {
                    op: BinOp::Pow,
                    lhs: Box::new(base),
                    rhs: Box::new(exp_expr),
                },
                Box::new(SpanNode::node(span, vec![*base_node, *exp_node])),
            ));
        }
        Ok((base, base_node))
    }

    fn parse_atom(&mut self) -> ExprResult<Sp> {
        let position = self.position();
        let token_span = self.current_span();
        match self.advance() {
            TokenKind::Int(v) => Ok((
                Expr::Const(Value::Int(v)),
                Box::new(SpanNode::leaf(token_span)),
            )),
            TokenKind::Float(v) => Ok((
                Expr::Const(Value::Float(v)),
                Box::new(SpanNode::leaf(token_span)),
            )),
            TokenKind::Str(s) => Ok((
                Expr::Const(Value::str(s)),
                Box::new(SpanNode::leaf(token_span)),
            )),
            TokenKind::True => Ok((
                Expr::Const(Value::Bool(true)),
                Box::new(SpanNode::leaf(token_span)),
            )),
            TokenKind::False => Ok((
                Expr::Const(Value::Bool(false)),
                Box::new(SpanNode::leaf(token_span)),
            )),
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    let func = BuiltinFn::from_name(&name).ok_or_else(|| ExprError::Parse {
                        message: format!("unknown function `{name}` (supported: min, max, abs)"),
                        position,
                    })?;
                    self.expect(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.parse_or()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    let span = Span::new(position, self.prev_end());
                    let mut arg_exprs = Vec::with_capacity(args.len());
                    let mut arg_nodes = Vec::with_capacity(args.len());
                    for (expr, node) in args {
                        arg_exprs.push(expr);
                        arg_nodes.push(*node);
                    }
                    Ok((
                        Expr::Call {
                            func,
                            args: arg_exprs,
                        },
                        Box::new(SpanNode::node(span, arg_nodes)),
                    ))
                } else {
                    Ok((Expr::Var(name), Box::new(SpanNode::leaf(token_span))))
                }
            }
            TokenKind::LParen => {
                // Parenthesized group: no tree node of its own, so the
                // span tree keeps the shape of the `Expr` tree.
                let inner = self.parse_or()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(ExprError::Parse {
                message: format!("unexpected {}", other.describe()),
                position,
            }),
        }
    }
}

/// Collapse a one-element connective chain to its single operand, or
/// build the `And`/`Or` node with the covering span.
fn connective(mut parts: Vec<Sp>, build: impl FnOnce(Vec<Expr>) -> Expr) -> Sp {
    if parts.len() == 1 {
        return parts.pop().expect("one element");
    }
    let span = parts[0]
        .1
        .span
        .to(parts.last().expect("at least two operands").1.span);
    let mut exprs = Vec::with_capacity(parts.len());
    let mut nodes = Vec::with_capacity(parts.len());
    for (expr, node) in parts {
        exprs.push(expr);
        nodes.push(*node);
    }
    (build(exprs), Box::new(SpanNode::node(span, nodes)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::CmpOp;
    use rustc_hash::FxHashMap;

    fn eval(src: &str, env: &[(&str, i64)]) -> Value {
        let env: FxHashMap<String, Value> = env
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Int(*v)))
            .collect();
        parse(src).unwrap().evaluate(&env).unwrap()
    }

    #[test]
    fn parses_listing2_constraint() {
        let e = parse("32 <= block_size_x*block_size_y <= 1024").unwrap();
        match &e {
            Expr::Compare { rest, .. } => assert_eq!(rest.len(), 2),
            other => panic!("expected a chained comparison, got {other:?}"),
        }
        assert_eq!(
            e.variables(),
            vec!["block_size_x".to_string(), "block_size_y".to_string()]
        );
    }

    #[test]
    fn precedence_mul_before_add() {
        assert_eq!(eval("2 + 3 * 4", &[]), Value::Int(14));
        assert_eq!(eval("(2 + 3) * 4", &[]), Value::Int(20));
    }

    #[test]
    fn power_is_right_associative() {
        assert_eq!(eval("2 ** 3 ** 2", &[]), Value::Int(512));
    }

    #[test]
    fn unary_minus_and_power() {
        assert_eq!(eval("-2 ** 2", &[]), Value::Int(-4)); // like Python: -(2**2)
        assert_eq!(eval("2 ** -1", &[]), Value::Float(0.5));
    }

    #[test]
    fn floor_division_and_modulo() {
        assert_eq!(eval("7 // 2", &[]), Value::Int(3));
        assert_eq!(eval("7 % 2", &[]), Value::Int(1));
        assert_eq!(eval("x % 16 == 0", &[("x", 32)]), Value::Bool(true));
    }

    #[test]
    fn comparison_chain_evaluates_like_python() {
        assert_eq!(eval("1 <= 2 <= 3", &[]), Value::Bool(true));
        assert_eq!(eval("1 <= 5 <= 3", &[]), Value::Bool(false));
        assert_eq!(
            eval("2 <= y <= 32 <= x * y <= 1024", &[("x", 16), ("y", 4)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_operators() {
        assert_eq!(eval("1 < 2 and 3 < 4", &[]), Value::Bool(true));
        assert_eq!(eval("1 < 2 and 4 < 3", &[]), Value::Bool(false));
        assert_eq!(eval("1 > 2 or 3 < 4", &[]), Value::Bool(true));
        assert_eq!(eval("not 1 > 2", &[]), Value::Bool(true));
    }

    #[test]
    fn membership() {
        assert_eq!(eval("x in [1, 2, 4]", &[("x", 4)]), Value::Bool(true));
        assert_eq!(eval("x in (1, 2, 4)", &[("x", 3)]), Value::Bool(false));
        assert_eq!(eval("x not in [1, 2]", &[("x", 3)]), Value::Bool(true));
    }

    #[test]
    fn builtin_calls() {
        assert_eq!(eval("min(x, 4)", &[("x", 9)]), Value::Int(4));
        assert_eq!(eval("max(x, 4) == 9", &[("x", 9)]), Value::Bool(true));
        assert_eq!(eval("abs(0 - x)", &[("x", 3)]), Value::Int(3));
    }

    #[test]
    fn conditional_style_constraint() {
        // typical Kernel Tuner restriction: only applies when a switch is on
        let src = "sh_power == 0 or tile_x % 2 == 0";
        assert_eq!(
            eval(src, &[("sh_power", 0), ("tile_x", 3)]),
            Value::Bool(true)
        );
        assert_eq!(
            eval(src, &[("sh_power", 1), ("tile_x", 3)]),
            Value::Bool(false)
        );
        assert_eq!(
            eval(src, &[("sh_power", 1), ("tile_x", 4)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("1 +").is_err());
        assert!(parse("foo(1)").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("x in 3").is_err());
    }

    #[test]
    fn hostile_nesting_is_rejected_cleanly() {
        // Each of these would overflow the parser's (or a later walk's)
        // stack if depth were unbounded; all must return a normal error.
        let cases = [
            format!("{}x{}", "(".repeat(5000), ")".repeat(5000)),
            format!("{}x", "not ".repeat(5000)),
            format!("{}x", "-".repeat(5000)),
            format!("{}x", "+".repeat(5000)),
            vec!["1"; 5000].join(" + "),
            vec!["1"; 5000].join(" * "),
            vec!["2"; 5000].join(" ** "),
            format!("{}x{}", "min(".repeat(5000), ")".repeat(5000)),
            format!("{}1{}", "1 in [".repeat(5000), "]".repeat(5000)),
        ];
        for src in &cases {
            match parse(src) {
                Err(ExprError::Parse { message, .. }) => {
                    assert!(message.contains("nesting"), "{message}");
                }
                other => panic!("expected a depth error, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_but_bounded_nesting_still_parses() {
        let src = format!("{}x{}", "(".repeat(80), ")".repeat(80));
        assert_eq!(parse(&src).unwrap(), Expr::Var("x".into()));
        let src = format!("{}x", "not ".repeat(80));
        assert!(parse(&src).is_ok());
        let chain = vec!["1"; 80].join(" + ");
        assert_eq!(
            eval(&chain, &[]),
            Value::Int(80),
            "long-but-reasonable sums must keep working"
        );
    }

    #[test]
    fn cmp_ops_parse() {
        for (src, expected) in [
            ("a < b", CmpOp::Lt),
            ("a <= b", CmpOp::Le),
            ("a > b", CmpOp::Gt),
            ("a >= b", CmpOp::Ge),
            ("a == b", CmpOp::Eq),
            ("a != b", CmpOp::Ne),
        ] {
            match parse(src).unwrap() {
                Expr::Compare { rest, .. } => assert_eq!(rest[0].0, expected),
                other => panic!("{other:?}"),
            }
        }
    }

    /// The span tree must mirror the expression tree node-for-node; check
    /// shapes and exact byte ranges on representative inputs.
    #[test]
    fn spans_mirror_the_expression_tree() {
        fn check_shape(expr: &Expr, node: &SpanNode) {
            let expected = match expr {
                Expr::Const(_) | Expr::Var(_) => 0,
                Expr::Neg(_) | Expr::Not(_) => 1,
                Expr::Binary { .. } => 2,
                Expr::Compare { rest, .. } => 1 + rest.len(),
                Expr::And(parts) | Expr::Or(parts) => parts.len(),
                Expr::In { set, .. } => 1 + set.len(),
                Expr::Call { args, .. } => args.len(),
            };
            assert_eq!(node.children.len(), expected, "{expr} vs {node:?}");
            let children: Vec<&Expr> = match expr {
                Expr::Const(_) | Expr::Var(_) => vec![],
                Expr::Neg(e) | Expr::Not(e) => vec![e.as_ref()],
                Expr::Binary { lhs, rhs, .. } => vec![lhs.as_ref(), rhs.as_ref()],
                Expr::Compare { first, rest } => {
                    let mut v = vec![first.as_ref()];
                    v.extend(rest.iter().map(|(_, e)| e));
                    v
                }
                Expr::And(parts) | Expr::Or(parts) => parts.iter().collect(),
                Expr::In { value, set, .. } => {
                    let mut v = vec![value.as_ref()];
                    v.extend(set.iter());
                    v
                }
                Expr::Call { args, .. } => args.iter().collect(),
            };
            for (child_expr, child_node) in children.iter().zip(&node.children) {
                assert!(
                    child_node.span.start >= node.span.start
                        && child_node.span.end <= node.span.end,
                    "child span {:?} escapes parent {:?}",
                    child_node.span,
                    node.span
                );
                check_shape(child_expr, child_node);
            }
        }

        for src in [
            "32 <= block_size_x*block_size_y <= 1024",
            "x in [1, 2, 4] and not y",
            "min(x, 4) == 9 or -x ** 2 < 3",
            "a == 0 or (b % a == 0 and not a > 3)",
            "+x + -y",
        ] {
            let (expr, spans) = parse_spanned(src).unwrap();
            check_shape(&expr, &spans);
            assert!(spans.span.end <= src.len());
        }
    }

    #[test]
    fn spans_point_at_the_source_bytes() {
        let src = "xx <= yy * 3 and zz in [1, 22]";
        let (expr, spans) = parse_spanned(src).unwrap();
        let Expr::And(parts) = &expr else {
            panic!("expected And, got {expr:?}")
        };
        assert_eq!(parts.len(), 2);
        // Whole expression.
        assert_eq!(&src[spans.span.start..spans.span.end], src);
        // First conjunct: the chained comparison `xx <= yy * 3`.
        let cmp = &spans.children[0];
        assert_eq!(&src[cmp.span.start..cmp.span.end], "xx <= yy * 3");
        assert_eq!(
            &src[cmp.children[0].span.start..cmp.children[0].span.end],
            "xx"
        );
        assert_eq!(
            &src[cmp.children[1].span.start..cmp.children[1].span.end],
            "yy * 3"
        );
        // Second conjunct: the membership test covers through `]`.
        let mem = &spans.children[1];
        assert_eq!(&src[mem.span.start..mem.span.end], "zz in [1, 22]");
        assert_eq!(
            &src[mem.children[2].span.start..mem.children[2].span.end],
            "22"
        );
    }

    #[test]
    fn parenthesized_groups_inherit_inner_spans() {
        let src = "(x + 1) * 2";
        let (expr, spans) = parse_spanned(src).unwrap();
        assert!(matches!(expr, Expr::Binary { op: BinOp::Mul, .. }));
        // The lhs node is the inner sum; its span excludes the parens.
        let lhs = &spans.children[0];
        assert_eq!(&src[lhs.span.start..lhs.span.end], "x + 1");
    }
}
