//! Recursive descent parser with Python operator precedence.
//!
//! Grammar (highest precedence last):
//!
//! ```text
//! expr        := or_expr
//! or_expr     := and_expr ("or" and_expr)*
//! and_expr    := not_expr ("and" not_expr)*
//! not_expr    := "not" not_expr | comparison
//! comparison  := arith (( "<" | "<=" | ">" | ">=" | "==" | "!=" ) arith)*
//!              | arith ("not")? "in" collection
//! arith       := term (("+" | "-") term)*
//! term        := factor (("*" | "/" | "//" | "%") factor)*
//! factor      := ("-" | "+") factor | power
//! power       := atom ("**" factor)?
//! atom        := INT | FLOAT | STR | "True" | "False" | IDENT
//!              | IDENT "(" args ")" | "(" expr ")" | collection
//! collection  := "[" expr ("," expr)* "]" | "(" expr ("," expr)+ ")"
//! ```

use at_csp::Value;

use crate::ast::{BinOp, BuiltinFn, Expr};
use crate::error::{ExprError, ExprResult};
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Maximum expression nesting depth the parser accepts.
///
/// Recursive descent recurses once per nesting level (`(`, `not`, unary
/// signs, call arguments), and the produced `Expr` tree is walked
/// recursively by every later stage (folding, compilation, `Drop`). An
/// unbounded depth would let a short hostile input — `((((…` — overflow
/// the stack as an uncatchable process abort, so depth is capped here,
/// where the overflow would first occur, and reported as an ordinary
/// [`ExprError::Parse`]. 200 levels is far beyond any real restriction
/// while keeping the deepest recursive walk comfortably within even a
/// small (512 KiB) thread stack.
const MAX_DEPTH: usize = 200;

/// Parse a constraint expression.
pub fn parse(source: &str) -> ExprResult<Expr> {
    let tokens = tokenize(source)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let expr = parser.parse_or()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression nesting depth (see [`MAX_DEPTH`]).
    depth: usize,
}

impl Parser {
    /// Enter one nesting level; errors beyond [`MAX_DEPTH`]. Every
    /// recursion cycle in the grammar passes through a guarded production
    /// (`parse_or`, `parse_not`, `parse_factor`), so the parser's own
    /// stack usage — and the depth of the tree it builds — is bounded.
    fn enter(&mut self) -> ExprResult<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ExprError::Parse {
                message: format!("expression nesting exceeds {MAX_DEPTH} levels"),
                position: self.position(),
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn position(&self) -> usize {
        self.tokens[self.pos].position
    }

    fn advance(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> ExprResult<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
                position: self.position(),
            })
        }
    }

    fn expect_eof(&mut self) -> ExprResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!("unexpected trailing {}", self.peek().describe()),
                position: self.position(),
            })
        }
    }

    fn parse_or(&mut self) -> ExprResult<Expr> {
        self.enter()?;
        let result = (|| {
            let first = self.parse_and()?;
            let mut parts = vec![first];
            while self.eat(&TokenKind::Or) {
                parts.push(self.parse_and()?);
            }
            Ok(if parts.len() == 1 {
                parts.pop().expect("one element")
            } else {
                Expr::Or(parts)
            })
        })();
        self.leave();
        result
    }

    fn parse_and(&mut self) -> ExprResult<Expr> {
        let first = self.parse_not()?;
        let mut parts = vec![first];
        while self.eat(&TokenKind::And) {
            parts.push(self.parse_not()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one element")
        } else {
            Expr::And(parts)
        })
    }

    fn parse_not(&mut self) -> ExprResult<Expr> {
        if self.eat(&TokenKind::Not) {
            self.enter()?;
            let inner = self.parse_not();
            self.leave();
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> ExprResult<Expr> {
        let first = self.parse_arith()?;
        // Membership test?
        if matches!(self.peek(), TokenKind::In)
            || (matches!(self.peek(), TokenKind::Not)
                && matches!(
                    self.tokens.get(self.pos + 1).map(|t| &t.kind),
                    Some(TokenKind::In)
                ))
        {
            let negated = self.eat(&TokenKind::Not);
            self.expect(&TokenKind::In)?;
            let set = self.parse_collection()?;
            return Ok(Expr::In {
                value: Box::new(first),
                set,
                negated,
            });
        }
        let mut rest = Vec::new();
        while let TokenKind::Cmp(op) = self.peek() {
            let op = *op;
            self.advance();
            let rhs = self.parse_arith()?;
            rest.push((op, rhs));
        }
        if rest.is_empty() {
            Ok(first)
        } else {
            Ok(Expr::Compare {
                first: Box::new(first),
                rest,
            })
        }
    }

    fn parse_collection(&mut self) -> ExprResult<Vec<Expr>> {
        let (open, close) = match self.peek() {
            TokenKind::LBracket => (TokenKind::LBracket, TokenKind::RBracket),
            TokenKind::LParen => (TokenKind::LParen, TokenKind::RParen),
            other => {
                return Err(ExprError::Parse {
                    message: format!(
                        "expected a list or tuple after `in`, found {}",
                        other.describe()
                    ),
                    position: self.position(),
                })
            }
        };
        self.expect(&open)?;
        let mut items = Vec::new();
        if self.peek() != &close {
            loop {
                items.push(self.parse_or()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                // allow trailing comma
                if self.peek() == &close {
                    break;
                }
            }
        }
        self.expect(&close)?;
        Ok(items)
    }

    fn parse_arith(&mut self) -> ExprResult<Expr> {
        let lhs = self.parse_term()?;
        self.parse_left_chain(lhs, |kind| match kind {
            TokenKind::Plus => Some(BinOp::Add),
            TokenKind::Minus => Some(BinOp::Sub),
            _ => None,
        })
    }

    fn parse_term(&mut self) -> ExprResult<Expr> {
        let lhs = self.parse_factor()?;
        self.parse_left_chain(lhs, |kind| match kind {
            TokenKind::Star => Some(BinOp::Mul),
            TokenKind::Slash => Some(BinOp::Div),
            TokenKind::DoubleSlash => Some(BinOp::FloorDiv),
            TokenKind::Percent => Some(BinOp::Mod),
            _ => None,
        })
    }

    /// Parse a left-associative operator chain. The loop itself is
    /// iterative, but each link nests the accumulated left-hand side one
    /// level deeper — `1 + 1 + … + 1` builds a tree as deep as the chain
    /// is long, and every later recursive walk (folding, evaluation,
    /// `Drop`) descends it. Chain links therefore count against
    /// [`MAX_DEPTH`] like any other nesting.
    fn parse_left_chain(
        &mut self,
        mut lhs: Expr,
        op_of: impl Fn(&TokenKind) -> Option<BinOp>,
    ) -> ExprResult<Expr> {
        let mut levels = 0usize;
        let result = loop {
            let Some(op) = op_of(self.peek()) else {
                break Ok(lhs);
            };
            if let Err(e) = self.enter() {
                break Err(e);
            }
            levels += 1;
            self.advance();
            match self.parse_term_or_factor(op) {
                Ok(rhs) => {
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                    };
                }
                Err(e) => break Err(e),
            }
        };
        for _ in 0..levels {
            self.leave();
        }
        result
    }

    /// The right-hand production of one chain link: `+`/`-` chain over
    /// terms, `*`-family chain over factors.
    fn parse_term_or_factor(&mut self, op: BinOp) -> ExprResult<Expr> {
        if matches!(op, BinOp::Add | BinOp::Sub) {
            self.parse_term()
        } else {
            self.parse_factor()
        }
    }

    fn parse_factor(&mut self) -> ExprResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            self.enter()?;
            let inner = self.parse_factor();
            self.leave();
            return Ok(Expr::Neg(Box::new(inner?)));
        }
        if self.eat(&TokenKind::Plus) {
            self.enter()?;
            let inner = self.parse_factor();
            self.leave();
            return inner;
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> ExprResult<Expr> {
        let base = self.parse_atom()?;
        if self.eat(&TokenKind::DoubleStar) {
            // Right associative, and `-` binds tighter on the exponent side.
            self.enter()?;
            let exponent = self.parse_factor();
            self.leave();
            return Ok(Expr::Binary {
                op: BinOp::Pow,
                lhs: Box::new(base),
                rhs: Box::new(exponent?),
            });
        }
        Ok(base)
    }

    fn parse_atom(&mut self) -> ExprResult<Expr> {
        let position = self.position();
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::Const(Value::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Const(Value::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Const(Value::str(s))),
            TokenKind::True => Ok(Expr::Const(Value::Bool(true))),
            TokenKind::False => Ok(Expr::Const(Value::Bool(false))),
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    let func = BuiltinFn::from_name(&name).ok_or_else(|| ExprError::Parse {
                        message: format!("unknown function `{name}` (supported: min, max, abs)"),
                        position,
                    })?;
                    self.expect(&TokenKind::LParen)?;
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.parse_or()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Call { func, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                let inner = self.parse_or()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(ExprError::Parse {
                message: format!("unexpected {}", other.describe()),
                position,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use at_csp::CmpOp;
    use rustc_hash::FxHashMap;

    fn eval(src: &str, env: &[(&str, i64)]) -> Value {
        let env: FxHashMap<String, Value> = env
            .iter()
            .map(|(k, v)| (k.to_string(), Value::Int(*v)))
            .collect();
        parse(src).unwrap().evaluate(&env).unwrap()
    }

    #[test]
    fn parses_listing2_constraint() {
        let e = parse("32 <= block_size_x*block_size_y <= 1024").unwrap();
        match &e {
            Expr::Compare { rest, .. } => assert_eq!(rest.len(), 2),
            other => panic!("expected a chained comparison, got {other:?}"),
        }
        assert_eq!(
            e.variables(),
            vec!["block_size_x".to_string(), "block_size_y".to_string()]
        );
    }

    #[test]
    fn precedence_mul_before_add() {
        assert_eq!(eval("2 + 3 * 4", &[]), Value::Int(14));
        assert_eq!(eval("(2 + 3) * 4", &[]), Value::Int(20));
    }

    #[test]
    fn power_is_right_associative() {
        assert_eq!(eval("2 ** 3 ** 2", &[]), Value::Int(512));
    }

    #[test]
    fn unary_minus_and_power() {
        assert_eq!(eval("-2 ** 2", &[]), Value::Int(-4)); // like Python: -(2**2)
        assert_eq!(eval("2 ** -1", &[]), Value::Float(0.5));
    }

    #[test]
    fn floor_division_and_modulo() {
        assert_eq!(eval("7 // 2", &[]), Value::Int(3));
        assert_eq!(eval("7 % 2", &[]), Value::Int(1));
        assert_eq!(eval("x % 16 == 0", &[("x", 32)]), Value::Bool(true));
    }

    #[test]
    fn comparison_chain_evaluates_like_python() {
        assert_eq!(eval("1 <= 2 <= 3", &[]), Value::Bool(true));
        assert_eq!(eval("1 <= 5 <= 3", &[]), Value::Bool(false));
        assert_eq!(
            eval("2 <= y <= 32 <= x * y <= 1024", &[("x", 16), ("y", 4)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn boolean_operators() {
        assert_eq!(eval("1 < 2 and 3 < 4", &[]), Value::Bool(true));
        assert_eq!(eval("1 < 2 and 4 < 3", &[]), Value::Bool(false));
        assert_eq!(eval("1 > 2 or 3 < 4", &[]), Value::Bool(true));
        assert_eq!(eval("not 1 > 2", &[]), Value::Bool(true));
    }

    #[test]
    fn membership() {
        assert_eq!(eval("x in [1, 2, 4]", &[("x", 4)]), Value::Bool(true));
        assert_eq!(eval("x in (1, 2, 4)", &[("x", 3)]), Value::Bool(false));
        assert_eq!(eval("x not in [1, 2]", &[("x", 3)]), Value::Bool(true));
    }

    #[test]
    fn builtin_calls() {
        assert_eq!(eval("min(x, 4)", &[("x", 9)]), Value::Int(4));
        assert_eq!(eval("max(x, 4) == 9", &[("x", 9)]), Value::Bool(true));
        assert_eq!(eval("abs(0 - x)", &[("x", 3)]), Value::Int(3));
    }

    #[test]
    fn conditional_style_constraint() {
        // typical Kernel Tuner restriction: only applies when a switch is on
        let src = "sh_power == 0 or tile_x % 2 == 0";
        assert_eq!(
            eval(src, &[("sh_power", 0), ("tile_x", 3)]),
            Value::Bool(true)
        );
        assert_eq!(
            eval(src, &[("sh_power", 1), ("tile_x", 3)]),
            Value::Bool(false)
        );
        assert_eq!(
            eval(src, &[("sh_power", 1), ("tile_x", 4)]),
            Value::Bool(true)
        );
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse("1 +").is_err());
        assert!(parse("foo(1)").is_err());
        assert!(parse("(1").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("x in 3").is_err());
    }

    #[test]
    fn hostile_nesting_is_rejected_cleanly() {
        // Each of these would overflow the parser's (or a later walk's)
        // stack if depth were unbounded; all must return a normal error.
        let cases = [
            format!("{}x{}", "(".repeat(5000), ")".repeat(5000)),
            format!("{}x", "not ".repeat(5000)),
            format!("{}x", "-".repeat(5000)),
            format!("{}x", "+".repeat(5000)),
            vec!["1"; 5000].join(" + "),
            vec!["1"; 5000].join(" * "),
            vec!["2"; 5000].join(" ** "),
            format!("{}x{}", "min(".repeat(5000), ")".repeat(5000)),
            format!("{}1{}", "1 in [".repeat(5000), "]".repeat(5000)),
        ];
        for src in &cases {
            match parse(src) {
                Err(ExprError::Parse { message, .. }) => {
                    assert!(message.contains("nesting"), "{message}");
                }
                other => panic!("expected a depth error, got {other:?}"),
            }
        }
    }

    #[test]
    fn deep_but_bounded_nesting_still_parses() {
        let src = format!("{}x{}", "(".repeat(150), ")".repeat(150));
        assert_eq!(parse(&src).unwrap(), Expr::Var("x".into()));
        let src = format!("{}x", "not ".repeat(150));
        assert!(parse(&src).is_ok());
        let chain = vec!["1"; 150].join(" + ");
        assert_eq!(
            eval(&chain, &[]),
            Value::Int(150),
            "long-but-reasonable sums must keep working"
        );
    }

    #[test]
    fn cmp_ops_parse() {
        for (src, expected) in [
            ("a < b", CmpOp::Lt),
            ("a <= b", CmpOp::Le),
            ("a > b", CmpOp::Gt),
            ("a >= b", CmpOp::Ge),
            ("a == b", CmpOp::Eq),
            ("a != b", CmpOp::Ne),
        ] {
            match parse(src).unwrap() {
                Expr::Compare { rest, .. } => assert_eq!(rest[0].0, expected),
                other => panic!("{other:?}"),
            }
        }
    }
}
