//! # at-expr — the constraint expression pipeline
//!
//! Auto-tuning users write constraints as Python-style expression strings
//! (Listing 2 of the paper), e.g.
//! `"32 <= block_size_x*block_size_y <= 1024"`. This crate implements the
//! paper's runtime parser (Section 4.2, Figure 1): it parses such strings,
//! constant-folds them, decomposes them into minimal-scope conjuncts,
//! recognises *specific* constraints (`MaxProduct`, `MinSum`, …) that the CSP
//! solver can preprocess, and compiles whatever remains into a small bytecode
//! VM — the analogue of the paper's runtime compilation of `Function`
//! constraints.
//!
//! ```
//! use at_expr::parse_restriction;
//!
//! let parsed = parse_restriction("32 <= block_size_x*block_size_y <= 1024").unwrap();
//! assert_eq!(parsed.constraints.len(), 2); // MinProduct + MaxProduct
//! assert_eq!(parsed.specific_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod decompose;
pub mod error;
pub mod fold;
pub mod lexer;
pub mod parser;
pub mod pipeline;
pub mod recognize;
pub mod span;
pub mod token;
pub mod vm;

pub use ast::{BinOp, BuiltinFn, Expr};
pub use compile::{compile, compile_auto, VmConstraint};
pub use decompose::decompose;
pub use error::{ExprError, ExprResult};
pub use fold::fold;
pub use lexer::tokenize;
pub use parser::{parse, parse_spanned};
pub use pipeline::{
    parse_restriction, parse_restriction_generic, restriction_from_expr, ParsedRestriction,
};
pub use recognize::{recognize, RecognizedConstraint};
pub use span::{Span, SpanNode};
pub use vm::{Op, Program};
