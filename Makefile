# Offline mirror of .github/workflows/ci.yml — `make verify` runs the full
# gate locally. The workspace has no network dependencies (see vendor/).

CARGO ?= cargo

.PHONY: verify fmt clippy lint-unsafe build test doctest smoke streaming store check-specs tune-smoke obs-smoke daemon-smoke examples doc fuzz-smoke fuzz bench bench-construction bench-store bench-tuner bench-daemon fix

verify: fmt clippy lint-unsafe build test smoke streaming store check-specs tune-smoke obs-smoke daemon-smoke examples doc fuzz-smoke
	@echo "---- all checks passed ----"

fmt:
	$(CARGO) fmt --all --check

# Unsafe-audit gate: unsafe code stays confined to the store's mmap path and
# every site there carries a `// SAFETY:` comment (see scripts/lint_unsafe.sh).
lint-unsafe:
	bash scripts/lint_unsafe.sh

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test --workspace -q

doctest:
	$(CARGO) test --workspace -q --doc

# The documented entry points (examples, figure binaries, benches) must at
# least compile so README instructions cannot rot.
smoke:
	$(CARGO) build --workspace --examples --benches --bins

# The streaming-construction gate: the sink-equivalence and cross-solver
# regression suites, plus a smoke-build of the construction benchmark
# (time + peak transient allocation per method).
streaming:
	$(CARGO) test -q --test sink_streaming --test proptest_solvers
	$(CARGO) build -p at_bench --bench construction

# The persistence gate: the save/load round-trip + corruption proptest
# suites (including the mmap/IDX suite), a smoke-build of the store bench
# (which includes the warm_load_mmap group), and an end-to-end cache
# round-trip through the CLI — construct twice with --cache-dir, assert the
# second run is a hit and both runs export byte-identical spaces, then
# re-run with --mmap and assert the summary reports a zero-copy load and
# the export still matches, then verify the cache (which validates the IDX
# checksums).
store:
	$(CARGO) test -q --test store_roundtrip --test store_mmap
	$(CARGO) build -p at_bench --bench store
	rm -rf target/store-smoke target/store-smoke-out
	mkdir -p target/store-smoke-out
	$(CARGO) run --release -p at_cli --bin atss -- construct --workload dedispersion --cache-dir target/store-smoke --format csv --out target/store-smoke-out/cold.csv
	$(CARGO) run --release -p at_cli --bin atss -- construct --workload dedispersion --cache-dir target/store-smoke --format summary | grep -E "^cache: +hit"
	$(CARGO) run --release -p at_cli --bin atss -- construct --workload dedispersion --cache-dir target/store-smoke --format csv --out target/store-smoke-out/warm.csv
	cmp target/store-smoke-out/cold.csv target/store-smoke-out/warm.csv
	$(CARGO) run --release -p at_cli --bin atss -- construct --workload dedispersion --cache-dir target/store-smoke --mmap --format summary | grep -E "^cache load: +zero-copy \(mmap\)"
	$(CARGO) run --release -p at_cli --bin atss -- construct --workload dedispersion --cache-dir target/store-smoke --mmap --format csv --out target/store-smoke-out/mmap.csv
	cmp target/store-smoke-out/cold.csv target/store-smoke-out/mmap.csv
	$(CARGO) run --release -p at_cli --bin atss -- cache verify --cache-dir target/store-smoke
	$(CARGO) run --release -p at_cli --bin atss -- cache verify --cache-dir target/store-smoke --json | grep '"damaged":0'

# The static-analysis self-check gate: run `atss check` over every built-in
# workload and the spec template. Clean specs must stay clean; the
# paper-verbatim GEMM and PRL restriction sets carry known benign findings
# (int/int true division is always Float → AT0003; tautological guards →
# AT0006; divisor values no configuration uses → prunable), asserted here as
# EXPECTED — a change in either direction fails the gate.
check-specs:
	$(CARGO) run --release -p at_cli --bin atss -- check --workload dedispersion | grep -F "0 error(s), 0 warning(s)"
	$(CARGO) run --release -p at_cli --bin atss -- check --workload expdist | grep -F "0 error(s), 0 warning(s)"
	$(CARGO) run --release -p at_cli --bin atss -- check --workload hotspot | grep -F "0 error(s), 0 warning(s)"
	$(CARGO) run --release -p at_cli --bin atss -- check --workload microhh | grep -F "0 error(s), 0 warning(s)"
	$(CARGO) run --release -p at_cli --bin atss -- check --workload gemm --json | grep -c '"code":"AT0003"' | grep -x 2
	$(CARGO) run --release -p at_cli --bin atss -- check --workload gemm --json | grep -c '"code":"AT0006"' | grep -x 2
	$(CARGO) run --release -p at_cli --bin atss -- check --workload prl-2x2 --json | grep -c '"code":"AT0006"' | grep -x 6
	$(CARGO) run --release -p at_cli --bin atss -- check --workload prl-4x4 --json | grep -F '"warnings":4'
	$(CARGO) run --release -p at_cli --bin atss -- check --workload prl-8x8 --json | grep -F '"prunable_values":8'
	$(CARGO) run --release -p at_cli --bin atss -- spec-template > target/spec-template.json
	$(CARGO) run --release -p at_cli --bin atss -- check --spec target/spec-template.json | grep -F "0 error(s), 0 warning(s)"

# The batched-evaluation gate: `atss capabilities` must emit its schema,
# and tuning must be thread-count-deterministic end to end — tune two
# workloads at --eval-threads 1 and 4 (construction pinned to 0 ms so the
# virtual clock matches across process runs) and require the result fields
# (best runtime/config, evaluation count, virtual clock) byte-identical.
tune-smoke:
	$(CARGO) run --release -p at_cli --bin atss -- capabilities | grep -F '"schema":"atss.capabilities.v1"'
	rm -rf target/tune-smoke
	mkdir -p target/tune-smoke
	for w in dedispersion hotspot; do \
	  for t in 1 4; do \
	    $(CARGO) run --release -p at_cli --bin atss -- tune --workload $$w --strategy genetic --budget-ms 5000 --seed 7 --construction-ms 0 --eval-threads $$t --json \
	      | grep -oE '"(best_runtime_ms|best_config_id|evaluations|total_ms)":[^,}]*' > target/tune-smoke/$$w-$$t.txt || exit 1; \
	  done; \
	  cmp target/tune-smoke/$$w-1.txt target/tune-smoke/$$w-4.txt || exit 1; \
	done

# The observability gate (see README "Observability"): traced construct
# and tune runs on two workloads must produce (a) trace files that pass
# the tool's own `trace-lint` walk, (b) a one-line atss.metrics.v1
# envelope, and (c) — the zero-interference contract — exports that are
# byte-identical with and without `--trace --metrics`.
obs-smoke:
	rm -rf target/obs-smoke
	mkdir -p target/obs-smoke
	for w in dedispersion microhh; do \
	  $(CARGO) run --release -p at_cli --bin atss -- construct --workload $$w --format csv --out target/obs-smoke/$$w-plain.csv || exit 1; \
	  $(CARGO) run --release -p at_cli --bin atss -- construct --workload $$w --format csv --out target/obs-smoke/$$w-traced.csv --trace target/obs-smoke/$$w-construct.trace.json --metrics \
	    | grep -F '"schema":"atss.metrics.v1"' || exit 1; \
	  cmp target/obs-smoke/$$w-plain.csv target/obs-smoke/$$w-traced.csv || exit 1; \
	  $(CARGO) run --release -p at_cli --bin atss -- trace-lint target/obs-smoke/$$w-construct.trace.json || exit 1; \
	done
	$(CARGO) run --release -p at_cli --bin atss -- tune --workload hotspot --strategy genetic --budget-ms 3000 --seed 7 --construction-ms 0 --eval-threads 4 --json --metrics --trace target/obs-smoke/tune.trace.json \
	  | grep -F '"observability":{"schema":"atss.metrics.v1"'
	$(CARGO) run --release -p at_cli --bin atss -- trace-lint target/obs-smoke/tune.trace.json

# The space-server gate (see README "Space-server daemon"): a release
# atssd driven through its full lifecycle — cold/warm --daemon constructs,
# byte-compared exports (daemon vs. daemonless), client resolve, ping,
# the atss.daemon-status.v1 envelope, unreachable-socket fallback, and a
# SIGTERM drain that must remove socket and pidfile.
daemon-smoke:
	bash scripts/daemon_smoke.sh

# The fuzzing gate (see README "Fuzzing & corpus policy"): replay every
# checked-in regression input, then a short fixed-seed run of all three
# targets so the differential oracles themselves are exercised on every
# verify. Deterministic: same seed, same inputs, every run.
fuzz-smoke:
	$(CARGO) test -q --test fuzz_corpus
	$(CARGO) run --release -p at_fuzz -- all --iters 20000 --seed 24301 --no-write

# The long-haul fuzzing run: minutes, not CI. New crashes are minimized and
# written into tests/fuzz_corpus/<target>/ — fix the bug and check the
# minimized input in alongside the fix.
fuzz:
	$(CARGO) run --release -p at_fuzz -- all --iters 2000000 --seed 24301

# Run the two API-tour examples end-to-end so drift between the examples and
# the `SearchSpace` API fails the gate, not just compilation.
examples:
	$(CARGO) run --release --example quickstart
	$(CARGO) run --release --example spec_files_and_export

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

bench:
	$(CARGO) bench -p at_bench

# Construction-path time + peak transient allocation across all six methods.
bench-construction:
	$(CARGO) bench -p at_bench --bench construction

# Persistence-path benchmarks: cold construction vs. warm ATSS load (the
# acceptance ratio is printed up front).
bench-store:
	$(CARGO) bench -p at_bench --bench store

# Batched-evaluation benchmarks: per-strategy eval throughput at 1 vs 4
# eval threads (the determinism check and the speedup comparison are
# printed up front), plus batch-engine and sharded-cache microbenchmarks.
bench-tuner:
	$(CARGO) bench -p at_bench --bench tuner

# Space-server benchmarks: warm daemon resolve + mmap attach vs. local
# cold construction (the acceptance ratio is printed up front).
bench-daemon:
	$(CARGO) bench -p at_bench --bench daemon

# Apply rustfmt and machine-applicable clippy suggestions.
fix:
	$(CARGO) clippy --fix --allow-dirty --workspace --all-targets
	$(CARGO) fmt --all
