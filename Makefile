# Offline mirror of .github/workflows/ci.yml — `make verify` runs the full
# gate locally. The workspace has no network dependencies (see vendor/).

CARGO ?= cargo

.PHONY: verify fmt clippy build test doctest smoke streaming examples doc bench bench-construction fix

verify: fmt clippy build test smoke streaming examples doc
	@echo "---- all checks passed ----"

fmt:
	$(CARGO) fmt --all --check

clippy:
	$(CARGO) clippy --workspace --all-targets -- -D warnings

build:
	$(CARGO) build --release --workspace

test:
	$(CARGO) test --workspace -q

doctest:
	$(CARGO) test --workspace -q --doc

# The documented entry points (examples, figure binaries, benches) must at
# least compile so README instructions cannot rot.
smoke:
	$(CARGO) build --workspace --examples --benches --bins

# The streaming-construction gate: the sink-equivalence and cross-solver
# regression suites, plus a smoke-build of the construction benchmark
# (time + peak transient allocation per method).
streaming:
	$(CARGO) test -q --test sink_streaming --test proptest_solvers
	$(CARGO) build -p at_bench --bench construction

# Run the two API-tour examples end-to-end so drift between the examples and
# the `SearchSpace` API fails the gate, not just compilation.
examples:
	$(CARGO) run --release --example quickstart
	$(CARGO) run --release --example spec_files_and_export

doc:
	RUSTDOCFLAGS="-D warnings" $(CARGO) doc --workspace --no-deps

bench:
	$(CARGO) bench -p at_bench

# Construction-path time + peak transient allocation across all six methods.
bench-construction:
	$(CARGO) bench -p at_bench --bench construction

# Apply rustfmt and machine-applicable clippy suggestions.
fix:
	$(CARGO) clippy --fix --allow-dirty --workspace --all-targets
	$(CARGO) fmt --all
