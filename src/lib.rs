//! # autotuning-searchspaces
//!
//! A from-scratch Rust reproduction of *Efficient Construction of Large
//! Search Spaces for Auto-Tuning* (ICPP 2025): constraint-based auto-tuning
//! search spaces constructed through an optimized all-solutions CSP solver,
//! together with every substrate the paper relies on — the constraint
//! expression pipeline, the chain-of-trees baseline, the resolved
//! `SearchSpace` abstraction, a minimal auto-tuner with simulated kernels,
//! and the evaluation workloads.
//!
//! This umbrella crate re-exports the workspace members; see the individual
//! crates for the full APIs:
//!
//! * [`csp`] — finite-domain CSP model and the all-solutions solvers,
//! * [`expr`] — the Python-style constraint expression parser/compiler,
//! * [`cot`] — the chain-of-trees construction baseline,
//! * [`searchspace`] — specifications, construction methods and the resolved
//!   search space representation,
//! * [`tuner`] — budgeted tuning strategies over simulated kernels,
//! * [`workloads`] — the paper's synthetic and real-world evaluation spaces.
//!
//! ```
//! use autotuning_searchspaces::prelude::*;
//!
//! let spec = SearchSpaceSpec::new("hotspot-mini")
//!     .with_param(TunableParameter::pow2("block_size_x", 8))
//!     .with_param(TunableParameter::pow2("block_size_y", 6))
//!     .with_expr("32 <= block_size_x*block_size_y <= 1024");
//! let (space, report) = build_search_space(&spec, Method::Optimized).unwrap();
//! println!("{} valid configurations in {:?}", space.len(), report.duration);
//! ```

pub use at_cot as cot;
pub use at_csp as csp;
pub use at_expr as expr;
pub use at_searchspace as searchspace;
pub use at_tuner as tuner;
pub use at_workloads as workloads;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use at_csp::prelude::*;
    pub use at_searchspace::prelude::*;
    pub use at_tuner::{tune, PerformanceModel, RandomSampling, Strategy, SyntheticKernel};
}
