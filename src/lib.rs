//! # autotuning-searchspaces
//!
//! A from-scratch Rust reproduction of *Efficient Construction of Large
//! Search Spaces for Auto-Tuning* (ICPP 2025): constraint-based auto-tuning
//! search spaces constructed through an optimized all-solutions CSP solver,
//! together with every substrate the paper relies on — the constraint
//! expression pipeline, the chain-of-trees baseline, the resolved
//! `SearchSpace` abstraction, a minimal auto-tuner with simulated kernels,
//! and the evaluation workloads.
//!
//! This umbrella crate re-exports the workspace members; see the individual
//! crates for the full APIs:
//!
//! * [`csp`] — finite-domain CSP model and the all-solutions solvers,
//! * [`expr`] — the Python-style constraint expression parser/compiler,
//! * [`cot`] — the chain-of-trees construction baseline,
//! * [`searchspace`] — specifications, construction methods and the resolved
//!   search space representation,
//! * [`obs`] — the observability layer: span/event tracing across the
//!   construct → store → tune pipeline, Chrome trace export, and the
//!   counting-allocator peak-memory probe,
//! * [`store`] — `ATSS` binary persistence and the content-addressed
//!   construction cache (solve once, serve forever),
//! * [`daemon`] — the resident space-server (`atssd`): one daemon owns
//!   the store, dedupes concurrent builds (single-flight), and hands
//!   clients validated paths to mmap in O(header),
//! * [`tuner`] — budgeted tuning strategies over simulated kernels,
//! * [`workloads`] — the paper's synthetic and real-world evaluation spaces.
//!
//! ```
//! use autotuning_searchspaces::prelude::*;
//!
//! let spec = SearchSpaceSpec::new("hotspot-mini")
//!     .with_param(TunableParameter::pow2("block_size_x", 8))
//!     .with_param(TunableParameter::pow2("block_size_y", 6))
//!     .with_expr("32 <= block_size_x*block_size_y <= 1024");
//! let (space, report) = build_search_space(&spec, Method::Optimized).unwrap();
//! println!("{} valid configurations in {:?}", space.len(), report.duration);
//! ```
//!
//! ## Construction methods are interchangeable
//!
//! Every [`searchspace::Method`] resolves a [`searchspace::SearchSpaceSpec`]
//! to the same set of valid configurations — only construction time differs
//! (the paper's central comparison):
//!
//! ```
//! use autotuning_searchspaces::prelude::*;
//!
//! let spec = SearchSpaceSpec::new("methods-agree")
//!     .with_param(TunableParameter::ints("x", 1..=8))
//!     .with_param(TunableParameter::ints("y", 1..=8))
//!     .with_expr("x * y <= 16")
//!     .with_expr("x + y >= 4");
//!
//! let (optimized, _) = build_search_space(&spec, Method::Optimized).unwrap();
//! let (brute, _) = build_search_space(&spec, Method::BruteForce).unwrap();
//! let (chain, _) = build_search_space(&spec, Method::ChainOfTrees).unwrap();
//! assert_eq!(optimized.len(), brute.len());
//! assert_eq!(optimized.len(), chain.len());
//! assert!(optimized.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use at_check as check;
pub use at_cot as cot;
pub use at_csp as csp;
pub use at_daemon as daemon;
pub use at_expr as expr;
pub use at_obs as obs;
pub use at_searchspace as searchspace;
pub use at_store as store;
pub use at_tuner as tuner;
pub use at_workloads as workloads;

/// The most commonly used items across the workspace.
///
/// Besides the search-space layer shown in the crate example, the prelude
/// exposes the underlying CSP machinery, so the all-solutions solvers can be
/// driven directly (Section 4.3 of the paper):
///
/// ```
/// use autotuning_searchspaces::prelude::*;
///
/// let mut problem = Problem::new();
/// problem.add_variable("x", int_values([1, 2, 3, 4, 5, 6])).unwrap();
/// problem.add_variable("y", int_values([1, 2, 3, 4, 5, 6])).unwrap();
/// problem.add_constraint(MaxProduct::new(12.0), &["x", "y"]).unwrap();
///
/// let optimized = OptimizedSolver::new().solve(&problem).unwrap();
/// let brute = BruteForceSolver::new().solve(&problem).unwrap();
/// assert!(optimized.solutions.same_solutions(&brute.solutions));
/// for row in optimized.solutions.iter() {
///     assert!(row[0].as_i64().unwrap() * row[1].as_i64().unwrap() <= 12);
/// }
/// ```
pub mod prelude {
    pub use at_csp::prelude::*;
    pub use at_searchspace::prelude::*;
    pub use at_store::{
        build_search_space_cached, IndexPolicy, LoadMode, LoadOptions, SpaceStore, SpecFingerprint,
    };
    pub use at_tuner::{
        tune, tune_with_backend, tune_with_options, EvalBackend, EvalOptions, Measurement,
        PerformanceModel, RandomSampling, Strategy, SyntheticKernel,
    };
}
