//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Supports what the workspace actually derives: plain (non-generic) structs
//! with named fields, plus the `#[serde(default)]` field attribute. The
//! token stream is walked directly with the `proc_macro` API — no `syn` or
//! `quote`, since those cannot be fetched offline. Generated impls target
//! the JSON-value traits of the companion `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    has_default: bool,
}

struct Struct {
    name: String,
    fields: Vec<Field>,
}

/// Derive `serde::Serialize` (shim version: conversion to a JSON value).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let mut body = String::new();
    body.push_str("let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
    for f in &parsed.fields {
        body.push_str(&format!(
            "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
            n = f.name
        ));
    }
    body.push_str("::serde::Value::Object(entries)\n");
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n\
         }}\n",
        name = parsed.name,
    );
    out.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim version: reconstruction from a JSON value).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_struct(input);
    let mut inits = String::new();
    for f in &parsed.fields {
        let missing = if f.has_default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{}\"))",
                f.name
            )
        };
        inits.push_str(&format!(
            "{n}: match entries.iter().find(|(k, _)| k == \"{n}\") {{\n\
             ::std::option::Option::Some((_, field)) => ::serde::Deserialize::from_value(field)?,\n\
             ::std::option::Option::None => {missing},\n\
             }},\n",
            n = f.name,
        ));
    }
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         let entries = match v.as_object() {{\n\
         ::std::option::Option::Some(entries) => entries,\n\
         ::std::option::Option::None => return ::std::result::Result::Err(::serde::DeError::custom(\"expected object\")),\n\
         }};\n\
         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
         }}\n\
         }}\n",
        name = parsed.name,
    );
    out.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

/// Extract the struct name and named fields from the derive input.
fn parse_struct(input: TokenStream) -> Struct {
    let mut tokens = input.into_iter().peekable();
    let mut name: Option<String> = None;
    let mut fields_group: Option<TokenStream> = None;
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.next() {
                    name = Some(n.to_string());
                }
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace
                    && name.is_some()
                    && fields_group.is_none() =>
            {
                fields_group = Some(g.stream());
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive shim: input is not a struct");
    let fields_group =
        fields_group.expect("serde_derive shim: only structs with named fields are supported");
    Struct {
        name,
        fields: parse_fields(fields_group),
    }
}

/// Parse the `{ ... }` field list: per field, attributes (looking for
/// `#[serde(default)]`), visibility, name, `:`, then type tokens up to the
/// next comma outside angle brackets.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let mut has_default = false;
        // Attributes.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.next() {
                has_default |= attr_is_serde_default(g.stream());
            }
        }
        // Visibility (`pub`, `pub(crate)`, ...).
        if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            tokens.next();
            if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                tokens.next();
            }
        }
        let Some(TokenTree::Ident(field_name)) = tokens.next() else {
            break;
        };
        // `:` then the type, consumed up to a top-level comma. The `>` of a
        // `->` arrow (e.g. in `Box<dyn Fn(i64) -> bool>`) is not an angle
        // bracket and must not change the depth.
        tokens.next();
        let mut angle_depth = 0i32;
        let mut prev_was_minus = false;
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' if !prev_was_minus => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
                prev_was_minus = p.as_char() == '-';
            } else {
                prev_was_minus = false;
            }
        }
        fields.push(Field {
            name: field_name.to_string(),
            has_default,
        });
    }
    fields
}

/// Whether an attribute body (the tokens inside `#[...]`) is `serde(default)`.
fn attr_is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|tt| matches!(tt, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}
