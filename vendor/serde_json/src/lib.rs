//! Offline stand-in for the `serde_json` crate.
//!
//! Re-exports the JSON [`Value`] model from the `serde` shim and adds a
//! hand-written recursive-descent parser, compact and pretty printers, and
//! the `from_str` / `to_string` / `to_string_pretty` entry points the
//! workspace uses. See `vendor/README.md` for the shim policy.

pub use serde::value::{Number, Value};

use serde::{Deserialize, Serialize};

/// A JSON parse or shape error, with line/column where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialize `value` as pretty-printed JSON (two-space indent, like
/// serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_inner);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad_inner);
                out.push_str(&serde::value::escape_json_string(k));
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse a complete JSON document into a [`Value`].
fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        Error::new(format!("{message} at line {line} column {column}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("expected ident"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("EOF while parsing a value")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("expected value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("EOF while parsing a string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require a following \uXXXX.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + (second.wrapping_sub(0xDC00));
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("EOF in \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Value::Number(Number::from_f64(f))),
            _ => Err(self.err("invalid number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x", true, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_str(), Some("x"));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>(r#"{"a" 1}"#).is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::String("line\n\"quote\"\\tab\t\u{1F600}".to_string());
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
        let unicode: Value = from_str(r#""\ud83d\ude00\u0041""#).unwrap();
        assert_eq!(unicode.as_str(), Some("\u{1F600}A"));
    }

    #[test]
    fn pretty_printing_is_stable_and_reparseable() {
        let v: Value = from_str(r#"{"name": "s", "values": [1, 2], "empty": []}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"values\": [\n    1,\n    2\n  ]"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_and_floats_stay_distinguishable() {
        let v: Value = from_str("[7, 7.0]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_i64(), Some(7));
        assert_eq!(items[1].as_i64(), None);
        assert_eq!(items[1].as_f64(), Some(7.0));
        assert_eq!(to_string(&v).unwrap(), "[7,7.0]");
    }
}
