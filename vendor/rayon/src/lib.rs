//! Offline stand-in for the `rayon` crate.
//!
//! Covers exactly the patterns the workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` and the same with an
//! interposed `.enumerate()` — with real data parallelism: the input
//! slice is split into one contiguous chunk per available core and
//! mapped on scoped threads, and the per-chunk outputs are concatenated
//! in order, so results are index-stable exactly like rayon's. Only
//! this API surface is provided; see `vendor/README.md`.

use std::num::NonZeroUsize;

/// The customary `use rayon::prelude::*;` import surface.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParEnumerate, ParEnumerateMap, ParIter, ParMap};
}

/// Number of worker threads to use (available parallelism, at least 1).
fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Borrowing conversion into a parallel iterator, as implemented by slices.
pub trait IntoParallelRefIterator<'a> {
    /// The element type iterated over.
    type Item: Sync + 'a;

    /// A parallel iterator over references into `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

/// A parallel iterator over `&T` items of a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f`, to be executed on worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }

    /// Pair each element with its index, like rayon's
    /// `IndexedParallelIterator::enumerate`.
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { slice: self.slice }
    }
}

/// The result of [`ParIter::enumerate`]: a parallel iterator over
/// `(index, &T)` pairs.
#[derive(Debug, Clone, Copy)]
pub struct ParEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    /// Map each `(index, &T)` pair through `f`, to be executed on worker
    /// threads.
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        F: Fn((usize, &'a T)) -> R + Sync,
        R: Send,
    {
        ParEnumerateMap {
            slice: self.slice,
            f,
        }
    }
}

/// The result of [`ParEnumerate::map`]: a lazy parallel indexed map.
#[derive(Debug, Clone, Copy)]
pub struct ParEnumerateMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParEnumerateMap<'a, T, F>
where
    T: Sync,
    F: Fn((usize, &'a T)) -> R + Sync,
    R: Send,
{
    /// Execute the map on scoped worker threads and collect the results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.slice.len();
        let workers = num_threads().min(n.max(1));
        if n == 0 || workers <= 1 {
            return self.slice.iter().enumerate().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(workers);
        let f = &self.f;
        let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk_size)
                .enumerate()
                .map(|(chunk_no, chunk)| {
                    let base = chunk_no * chunk_size;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .enumerate()
                            .map(|(i, item)| f((base + i, item)))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            chunk_outputs = handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect();
        });
        chunk_outputs.into_iter().flatten().collect()
    }
}

/// The result of [`ParIter::map`]: a lazy parallel map over a slice.
#[derive(Debug, Clone, Copy)]
pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Execute the map on scoped worker threads and collect the results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.slice.len();
        let workers = num_threads().min(n.max(1));
        if n == 0 || workers <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(workers);
        let f = &self.f;
        let mut chunk_outputs: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            chunk_outputs = handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect();
        });
        chunk_outputs.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn enumerate_map_collect_pairs_indices() {
        let input: Vec<u64> = (0..4_000).map(|x| x * 3).collect();
        let out: Vec<(usize, u64)> = input.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(out.len(), input.len());
        for (i, (idx, v)) in out.iter().enumerate() {
            assert_eq!(*idx, i);
            assert_eq!(*v, 3 * i as u64);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
