//! Offline stand-in for the `serde` crate.
//!
//! Real serde is a generic serialization framework; this workspace only ever
//! moves data through JSON, so the shim collapses the data model to a single
//! JSON [`Value`] type and two object-safe traits. The derive macros are
//! re-exported from the companion `serde_derive` shim and generate impls of
//! exactly these traits. See `vendor/README.md` for the shim policy.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// The canonical "missing field" error.
    pub fn missing_field(field: &str) -> Self {
        DeError {
            message: format!("missing field `{field}`"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a JSON [`Value`].
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for i64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => n
                .as_i64()
                .ok_or_else(|| DeError::custom(format!("expected integer, got {n}"))),
            other => Err(DeError::custom(format!("expected integer, got {other}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::from(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => n
                .as_f64()
                .ok_or_else(|| DeError::custom(format!("expected number, got {n}"))),
            other => Err(DeError::custom(format!("expected number, got {other}"))),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::from(*self as i64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = i64::from_value(v)?;
        usize::try_from(i).map_err(|_| DeError::custom(format!("expected usize, got {i}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}
