//! The JSON value model shared by the `serde` and `serde_json` shims.

/// A JSON document: the full serde_json data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number (integer or floating point).
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object. Entries keep insertion order (like serde_json's
    /// `preserve_order` feature) so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Look up a key, if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Number(Number::from_i64(i))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Number(Number::from_i64(i as i64))
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        match i64::try_from(u) {
            Ok(i) => Value::Number(Number::from_i64(i)),
            Err(_) => Value::Number(Number::from_f64(u as f64)),
        }
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::from(u as u64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::from_f64(f))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl std::fmt::Display for Value {
    /// Renders compact JSON, like serde_json's `Display` for `Value`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => f.write_str(&escape_json_string(s)),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape_json_string(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Quote and escape a string for JSON output.
pub fn escape_json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number: an `i64` when the text was integral, otherwise an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    repr: Repr,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Repr {
    Int(i64),
    Float(f64),
}

impl Number {
    /// A number holding an integer.
    pub fn from_i64(i: i64) -> Self {
        Number { repr: Repr::Int(i) }
    }

    /// A number holding a float.
    pub fn from_f64(f: f64) -> Self {
        Number {
            repr: Repr::Float(f),
        }
    }

    /// The number as an `i64`, if it is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::Int(i) => Some(i),
            Repr::Float(_) => None,
        }
    }

    /// The number as an `f64`. Always succeeds for finite input.
    pub fn as_f64(&self) -> Option<f64> {
        match self.repr {
            Repr::Int(i) => Some(i as f64),
            Repr::Float(f) => Some(f),
        }
    }

    /// Whether the number is stored as an integer.
    pub fn is_i64(&self) -> bool {
        matches!(self.repr, Repr::Int(_))
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.repr {
            Repr::Int(i) => write!(f, "{i}"),
            Repr::Float(x) => {
                // serde_json always keeps a float-looking representation so
                // the value round-trips as a float.
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}
