//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the Criterion API shape
//! the workspace's benches use: `criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`] and
//! [`Bencher::iter`]. Each benchmark runs one warmup iteration plus
//! `sample_size` timed samples and reports min / median / mean to stdout —
//! no statistical analysis, plots or HTML reports. See `vendor/README.md`
//! for the shim policy.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (Criterion's default is 100;
    /// the shim defaults to 10 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// End the group (formatting separator only, in this shim).
    pub fn finish(self) {
        println!();
    }
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier distinguished by parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            f.write_str(&self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one sample of `routine`. The return value is black-boxed so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// One warmup call plus `sample_size` timed samples; prints a summary line.
fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut warmup = Bencher::default();
    f(&mut warmup);
    let mut bencher = Bencher::default();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        // The closure never called `iter`; count whole-closure time instead.
        samples = warmup.samples;
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len().max(1) as u32;
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!("{label:<60} min {min:>12.3?}   median {median:>12.3?}   mean {mean:>12.3?}");
}

/// Bundle benchmark functions into a runnable group, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run_and_record() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counting", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| {
            runs += 1;
            b.iter(|| n * 2)
        });
        group.finish();
        // warmup + 3 samples
        assert_eq!(runs, 4);
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
