//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same Fx polynomial hash (multiply + rotate over native
//! words) and exports the `FxHashMap` / `FxHashSet` aliases the workspace
//! uses. Only the API surface the workspace needs is provided; see
//! `vendor/README.md` for why these shims exist.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// The `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Firefox/rustc hasher: fast, not DoS-resistant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i64> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i * 31);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&310));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"search space");
        b.write(b"search space");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"search spacf");
        assert_ne!(a.finish(), c.finish());
    }
}
