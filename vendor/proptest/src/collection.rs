//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::Rng;

use crate::{Strategy, TestRng};

/// A strategy producing `Vec`s whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec length range must be non-empty");
    VecStrategy { element, len }
}

/// The result of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
