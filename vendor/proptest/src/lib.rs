//! Offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core of property testing with the same
//! API spelling the workspace's tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`Just`], `collection::vec`, `option::of`, the `prop_oneof!` /
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros and
//! [`ProptestConfig`]. Failing cases are reported with their inputs via the
//! panic message but are *not* shrunk — that is the one behavioral
//! difference from real proptest. Generation is seeded per test name, so
//! runs are deterministic. See `vendor/README.md` for the shim policy.

use std::ops::Range;
use std::rc::Rc;

use rand::Rng;

pub mod collection;
pub mod option;
pub mod test_runner;

pub use test_runner::TestRng;

/// The customary `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, Union,
    };
}

/// Per-test configuration; only `cases` is implemented.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + Clone,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!` to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Object-safe mirror of [`Strategy`], for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice between boxed strategies; built by `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident => $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
}

/// Uniform choice among heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strategy) ),+ ])
    };
}

/// Assert inside a property; counts as a failing case on violation.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )+
                    let __inputs = format!(
                        concat!("[case {} of {}]", $(" ", stringify!($arg), " = {:?};",)+),
                        __case + 1, __config.cases, $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let ::std::result::Result::Err(__panic) = __outcome {
                        eprintln!("proptest case failed: {__inputs}");
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::test_runner::rng_for_test("shim-smoke");
        let s = (1i64..10, 0usize..3).prop_map(|(a, b)| a as usize + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = crate::test_runner::rng_for_test("arms");
        let s = prop_oneof![Just(1u8), Just(2u8), 3u8..5];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn flat_map_uses_the_intermediate_value() {
        let mut rng = crate::test_runner::rng_for_test("flat");
        let s = (2usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n..n + 1));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 1i64..100, v in crate::collection::vec(0i64..5, 0..4)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(v.iter().filter(|&&e| e >= 5).count(), 0);
        }
    }
}
