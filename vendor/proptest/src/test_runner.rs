//! The random source behind generated cases.

use rand_chacha::ChaCha8Rng;

/// The RNG threaded through [`crate::Strategy::generate`].
pub type TestRng = ChaCha8Rng;

/// A deterministic per-test generator: seeded from the test's name (FNV-1a)
/// so each property explores its own stream but reruns reproduce failures.
/// Set `PROPTEST_SEED` to an integer to perturb all streams at once.
pub fn rng_for_test(test_name: &str) -> TestRng {
    use rand::SeedableRng;

    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = seed.parse::<u64>() {
            hash = hash.wrapping_add(n);
        }
    }
    ChaCha8Rng::seed_from_u64(hash)
}
