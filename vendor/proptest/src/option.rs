//! Option strategies (`proptest::option::of`).

use rand::Rng;

use crate::{Strategy, TestRng};

/// A strategy producing `Some` values from `inner` three quarters of the
/// time, `None` otherwise (matching real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
