//! Offline stand-in for the `rand_chacha` crate.
//!
//! A genuine ChaCha8 stream cipher core (Bernstein's ChaCha with 8 rounds)
//! exposed as [`ChaCha8Rng`] through the `rand` shim's traits, so every
//! seeded experiment in the workspace is deterministic across platforms and
//! statistically sound. Word-stream compatibility with the real
//! `rand_chacha` crate is *not* guaranteed — seeds produce valid but
//! different streams. See `vendor/README.md` for the shim policy.

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

/// A ChaCha stream cipher with 8 rounds, used as a seedable PRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit block counter,
    /// 64-bit stream id.
    state: [u32; 16],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generate the next keystream block and advance the block counter.
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = ((self.state[13] as u64) << 32 | self.state[12] as u64).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16 (counter and stream id) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_core_matches_ietf_test_vector() {
        // RFC 8439 2.3.2 block function input (20 rounds there; here we
        // check our quarter-round against the RFC 8439 2.1.1 vector, which
        // is round-count independent).
        let mut s = [0u32; 16];
        s[0] = 0x11111111;
        s[1] = 0x01020304;
        s[2] = 0x9b8d6f43;
        s[3] = 0x01234567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a92f4);
        assert_eq!(s[1], 0xcb1cf8ce);
        assert_eq!(s[2], 0x4581472e);
        assert_eq!(s[3], 0x5881c4bb);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let words_a: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let words_b: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let words_c: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(words_a, words_b);
        assert_ne!(words_a, words_c);
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000usize;
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &count in &buckets {
            // Each bucket expects 1000; allow a generous ±20%.
            assert!((800..1200).contains(&count), "skewed bucket: {count}");
        }
    }
}
