//! Slice sampling and shuffling (the `rand::seq` module surface).

use crate::{Rng, RngCore};

/// Random selection and permutation over slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly chosen reference, or `None` for an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Lcg(13);
        let v = [1u8, 2, 3];
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
