//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface the workspace uses — [`RngCore`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] (`seed_from_u64`) and
//! [`seq::SliceRandom`] (`choose`, `shuffle`) — over any generator that
//! implements [`RngCore`]. The concrete generator lives in the
//! `rand_chacha` shim. See `vendor/README.md` for the shim policy.

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// The low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32;
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, with the convenience `seed_from_u64` used
/// throughout the workspace for reproducible experiments.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a 64-bit integer by expanding it with SplitMix64,
    /// mirroring rand's implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A uniform double in `[0, 1)` with 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform value in `[0, span)` for `span >= 1`, via 128-bit widening
/// multiply (Lemire's method, bias < 2^-64).
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Cast through the same-width unsigned type so signed spans
                // (which wrap negative) don't sign-extend into u64.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

impl SampleRange<u128> for Range<u128> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let word = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        // Modulo bias is < span / 2^128: irrelevant at workspace sizes.
        self.start + word % span
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for testing the trait plumbing.
    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..2000 {
            let a = rng.gen_range(0..10usize);
            assert!(a < 10);
            let b = rng.gen_range(2..=4i64);
            assert!((2..=4).contains(&b));
            let c = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&c));
            let d = rng.gen_range(0..1_000_000u128);
            assert!(d < 1_000_000);
        }
    }

    #[test]
    fn signed_narrow_type_spans_do_not_sign_extend() {
        let mut rng = Lcg(9);
        for _ in 0..2000 {
            let a = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&a));
            let b = rng.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&b));
            let c = rng.gen_range(i32::MIN..0);
            assert!(c < 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = Lcg(3);
        let mut low = false;
        let mut high = false;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            low |= x < 0.5;
            high |= x >= 0.5;
        }
        assert!(low && high);
    }
}
