#!/usr/bin/env bash
# Unsafe-audit gate.
#
# Policy (enforced here and by crate attributes):
#   * `unsafe` is allowed ONLY in crates/store/src/mmap.rs and
#     crates/store/src/format.rs (the mmap zero-copy path),
#     crates/obs/src/alloc.rs (the counting global allocator's
#     GlobalAlloc impl, which is unsafe by signature), and
#     crates/daemon/src/signal.rs (signal(2) registration FFI; the
#     handler body is a single atomic store);
#   * every unsafe site there must carry a `// SAFETY:` comment within
#     the six lines above it;
#   * every other workspace crate root carries #![forbid(unsafe_code)],
#     and at_store/at_obs/at_daemon carry
#     #![deny(unsafe_op_in_unsafe_fn)].
#
# The bench crate's criterion bench targets and the vendor shims are
# separate crate roots outside crates/*/src and are not covered by this
# audit.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob
import re
import sys

errors = []

ALLOWED = {
    "crates/store/src/mmap.rs",
    "crates/store/src/format.rs",
    "crates/obs/src/alloc.rs",
    "crates/daemon/src/signal.rs",
}


def code_mentions_unsafe(line):
    code = line.split("//")[0]
    if "unsafe_code" in code or "unsafe_op_in_unsafe_fn" in code:
        return False  # the lint attributes themselves
    return re.search(r"\bunsafe\b", code) is not None


sources = sorted(
    set(glob.glob("crates/*/src/**/*.rs", recursive=True))
    | set(glob.glob("src/**/*.rs", recursive=True))
)
audited = 0
for path in sources:
    with open(path) as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines):
        if not code_mentions_unsafe(line):
            continue
        if path not in ALLOWED:
            errors.append(f"{path}:{i + 1}: unsafe outside the audited modules")
            continue
        audited += 1
        window = lines[max(0, i - 6) : i]
        if not any("SAFETY:" in w for w in window):
            errors.append(f"{path}:{i + 1}: unsafe site without a `// SAFETY:` comment")

for lib in sorted(glob.glob("crates/*/src/lib.rs")):
    with open(lib) as f:
        text = f.read()
    if lib in (
        "crates/store/src/lib.rs",
        "crates/obs/src/lib.rs",
        "crates/daemon/src/lib.rs",
    ):
        if "#![deny(unsafe_op_in_unsafe_fn)]" not in text:
            errors.append(f"{lib}: missing #![deny(unsafe_op_in_unsafe_fn)]")
    elif "#![forbid(unsafe_code)]" not in text:
        errors.append(f"{lib}: missing #![forbid(unsafe_code)]")
if "#![forbid(unsafe_code)]" not in open("src/lib.rs").read():
    errors.append("src/lib.rs: missing #![forbid(unsafe_code)]")

if errors:
    print("unsafe audit FAILED:")
    for e in errors:
        print(f"  {e}")
    sys.exit(1)
print(
    f"unsafe audit OK: {audited} documented unsafe site(s), all confined to "
    "crates/store/src/{mmap,format}.rs, crates/obs/src/alloc.rs and "
    "crates/daemon/src/signal.rs"
)
EOF
