#!/usr/bin/env bash
# Space-server gate (see README "Space-server daemon"): drive a release
# `atssd` through its full lifecycle against the real binary —
#
#   1. start `atss daemon run` on a fresh socket (background), wait for
#      the socket and the pidfile;
#   2. cold `construct --daemon` (summary must say the daemon *built*),
#      then warm (must say *warm* + zero-copy mmap attach);
#   3. byte-compare daemon-resolved CSV exports between runs and against
#      a daemonless local construction — the daemon must never change
#      what a space contains;
#   4. `client resolve`, `daemon ping`, `daemon status` (the
#      atss.daemon-status.v1 envelope, exactly one build recorded);
#   5. `--daemon` on an unreachable socket must fall back to local
#      construction, not fail;
#   6. SIGTERM: the daemon drains, exits 0, and removes both the socket
#      and the pidfile.
set -euo pipefail
cd "$(dirname "$0")/.."

CARGO=${CARGO:-cargo}
$CARGO build --release -p at_cli --bin atss
ATSS=target/release/atss

BASE=target/daemon-smoke
rm -rf "$BASE"
mkdir -p "$BASE"
SOCK="$BASE/atssd.sock"

"$ATSS" daemon run --socket "$SOCK" --cache-dir "$BASE/cache" &
DPID=$!
cleanup() { kill -TERM "$DPID" 2>/dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "daemon-smoke: socket never appeared" >&2; exit 1; }
[ -f "$SOCK.pid" ] || { echo "daemon-smoke: pidfile never appeared" >&2; exit 1; }

# Cold resolve through the daemon: the daemon builds and persists.
"$ATSS" construct --workload dedispersion --daemon "$SOCK" --format summary > "$BASE/cold.txt"
grep -E '^daemon: +built' "$BASE/cold.txt"
grep -E '^daemon attach: +zero-copy \(mmap\)' "$BASE/cold.txt"

# Warm resolve: no build, O(header) trusted mmap attach.
"$ATSS" construct --workload dedispersion --daemon "$SOCK" --format summary > "$BASE/warm.txt"
grep -E '^daemon: +warm' "$BASE/warm.txt"
grep -F 'zero-copy (mmap)' "$BASE/warm.txt"
grep -F 'construction time:    none' "$BASE/warm.txt"

# Identity: daemon-resolved exports are byte-identical between runs and
# to a daemonless local construction.
"$ATSS" construct --workload dedispersion --daemon "$SOCK" --format csv --out "$BASE/daemon1.csv"
"$ATSS" construct --workload dedispersion --daemon "$SOCK" --format csv --out "$BASE/daemon2.csv"
"$ATSS" construct --workload dedispersion --format csv --out "$BASE/local.csv"
cmp "$BASE/daemon1.csv" "$BASE/daemon2.csv"
cmp "$BASE/daemon1.csv" "$BASE/local.csv"

# The thin client, liveness, and the status envelope.
"$ATSS" client resolve --socket "$SOCK" --workload dedispersion | grep -E '^daemon: +warm'
"$ATSS" daemon ping --socket "$SOCK" | grep -F 'pong: pid'
"$ATSS" daemon status --socket "$SOCK" > "$BASE/status.json"
grep -F '"schema":"atss.daemon-status.v1"' "$BASE/status.json"
grep -F '"builds":1' "$BASE/status.json"

# Unreachable daemon: transparent fallback to local construction.
"$ATSS" construct --workload dedispersion --daemon "$BASE/nope.sock" --format summary \
  > "$BASE/fallback.txt" 2> "$BASE/fallback.err"
grep -F 'unavailable' "$BASE/fallback.err"
grep -F 'valid configurations:' "$BASE/fallback.txt"

# SIGTERM drain: exit 0, socket and pidfile removed.
kill -TERM "$DPID"
trap - EXIT
wait "$DPID" || { echo "daemon-smoke: daemon exited non-zero after SIGTERM" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "daemon-smoke: socket not removed on shutdown" >&2; exit 1; }
[ ! -e "$SOCK.pid" ] || { echo "daemon-smoke: pidfile not removed on shutdown" >&2; exit 1; }

echo "daemon-smoke: all checks passed"
