//! Using the three restriction flavours — expression strings, Rust closures
//! and pre-built specific constraints — plus the resolved-space operations
//! optimizers rely on: membership tests, valid neighbors and Latin Hypercube
//! Sampling.
//!
//! Run with: `cargo run --release --example custom_constraints`

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::searchspace::{
    latin_hypercube_sample, neighbors, NeighborIndex, NeighborMethod, Restriction,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let spec = SearchSpaceSpec::new("custom-constraints")
        .with_param(TunableParameter::pow2("tile_x", 7))
        .with_param(TunableParameter::pow2("tile_y", 7))
        .with_param(TunableParameter::strings(
            "layout",
            &["row", "col", "tiled"],
        ))
        // 1) a Python-style expression string, parsed and decomposed at runtime
        .with_expr("16 <= tile_x * tile_y <= 1024")
        // 2) a Rust closure over named parameters (the lambda-style API)
        .with_restriction(Restriction::func(
            &["layout", "tile_x", "tile_y"],
            "tiled layout requires square tiles",
            |v| v[0].as_str() != Some("tiled") || v[1] == v[2],
        ))
        // 3) a pre-built specific constraint
        .with_restriction(Restriction::specific(
            &["tile_x", "tile_y"],
            MaxSum::new(160.0),
        ));

    let (space, report) = build_search_space(&spec, Method::Optimized).expect("construction");
    println!(
        "{} valid configurations (Cartesian {}), constructed in {:?}",
        space.len(),
        report.cartesian_size,
        report.duration
    );

    // membership and index lookups
    let config = vec![Value::Int(8), Value::Int(8), Value::str("tiled")];
    println!(
        "is (8, 8, tiled) valid? {} (index {:?})",
        space.contains(&config),
        space.index_of(&config)
    );
    let invalid = vec![Value::Int(2), Value::Int(2), Value::str("row")];
    println!("is (2, 2, row) valid? {}", space.contains(&invalid));

    // valid neighbors, as used by the genetic algorithm's mutation step
    if let Some(center) = space.index_of(&config) {
        let index = NeighborIndex::build(&space);
        let hamming = neighbors(&space, center, NeighborMethod::Hamming, Some(&index));
        println!(
            "(8, 8, tiled) has {} Hamming-distance-1 valid neighbors, e.g.:",
            hamming.len()
        );
        for &id in hamming.iter().take(3) {
            println!("  {:?}", space.view(id).unwrap());
        }
    }

    // stratified initial sampling
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let samples = latin_hypercube_sample(&space, 8, &mut rng);
    println!("\nLatin Hypercube sample of the space:");
    for &id in &samples {
        println!("  {:?}", space.view(id).unwrap());
    }
}
