//! A miniature version of the paper's synthetic scaling study (Figure 3):
//! generate synthetic search spaces of growing size and compare how the
//! construction time of each method scales with the number of valid
//! configurations.
//!
//! Run with: `cargo run --release --example synthetic_scaling`

use std::time::Instant;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::workloads::{generate, SyntheticConfig};

fn main() {
    let methods = [
        Method::BruteForce,
        Method::Original,
        Method::Optimized,
        Method::ChainOfTrees,
    ];
    println!(
        "{:<12} {:>12} {:>10} | {:>14} {:>14} {:>14} {:>14}",
        "target", "cartesian", "valid", "brute-force", "original", "optimized", "chain-of-trees"
    );

    for target in [5_000u64, 20_000, 100_000, 500_000] {
        let spec = generate(SyntheticConfig {
            dimensions: 4,
            target_cartesian_size: target,
            num_constraints: 3,
            seed: 7,
        });
        let mut row = Vec::new();
        let mut valid = 0usize;
        let mut cartesian = 0u128;
        for method in methods {
            let start = Instant::now();
            let (space, report) = build_search_space(&spec, method).expect("construction");
            row.push(format!("{:>14.3?}", start.elapsed()));
            valid = space.len();
            cartesian = report.cartesian_size;
        }
        println!(
            "{:<12} {:>12} {:>10} | {}",
            target,
            cartesian,
            valid,
            row.join(" ")
        );
    }
    println!(
        "\nAs in Figure 3, the optimized method stays orders of magnitude below the baselines \
         while all methods grow with the number of valid configurations."
    );
}
