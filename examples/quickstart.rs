//! Quickstart: define a constrained search space the way a Kernel Tuner user
//! would (Listing 2 / Listing 3 of the paper), construct it with the
//! optimized CSP solver, and inspect the result.
//!
//! Run with: `cargo run --release --example quickstart`

use autotuning_searchspaces::prelude::*;

fn main() {
    // The Hotspot-style thread block constraint from Section 2 of the paper:
    // between 32 and 1024 threads per block, plus a shared-memory limit.
    let spec = SearchSpaceSpec::new("quickstart")
        .with_param(TunableParameter::ints(
            "block_size_x",
            vec![1, 2, 4, 8, 16]
                .into_iter()
                .chain((1..=32).map(|i| 32 * i))
                .collect::<Vec<_>>(),
        ))
        .with_param(TunableParameter::pow2("block_size_y", 6))
        .with_param(TunableParameter::ints("work_per_thread", [1, 2, 4, 8]))
        .with_param(TunableParameter::switch("sh_power"))
        .with_expr("32 <= block_size_x*block_size_y <= 1024")
        .with_expr("block_size_x*block_size_y*work_per_thread*sh_power*4 <= 49152");

    println!("Cartesian size (unconstrained): {}", spec.cartesian_size());

    // Construct with the optimized solver — the paper's contribution.
    let (space, report) = build_search_space(&spec, Method::Optimized).expect("construction");
    println!(
        "constructed {} valid configurations in {:?} ({} constraint checks)",
        space.len(),
        report.duration,
        report.stats.constraint_checks
    );

    // The resolved space knows its true bounds and serves valid neighbors.
    for (param, bounds) in space.params().iter().zip(space.true_bounds()) {
        println!("  true bounds of {:<14}: {:?}", param.name(), bounds);
    }

    // Compare against brute force to see the difference in work.
    let (_, brute) = build_search_space(&spec, Method::BruteForce).expect("construction");
    println!(
        "brute force needed {} constraint checks ({}x more), {:?}",
        brute.stats.constraint_checks,
        brute.stats.constraint_checks / report.stats.constraint_checks.max(1),
        brute.duration,
    );

    // Show a few configurations: ids decode lazily through `ConfigView`.
    println!("\nfirst three valid configurations:");
    for view in space.iter().take(3) {
        println!("  {} {:?}", view.id(), view);
    }
}
