//! Search spaces as data: read a JSON specification, construct it, export the
//! resolved space in the formats downstream tools consume (CSV, a Kernel
//! Tuner-style JSON cache), and write a spec back out.
//!
//! The same JSON format is what the `atss` command-line tool consumes
//! (`atss construct --spec <file>`), so specs can be shared between scripts,
//! the CLI and this library.
//!
//! Run with: `cargo run --release --example spec_files_and_export`

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::searchspace::{spec_from_json, spec_to_json, to_csv, to_json_cache};

const SPEC_JSON: &str = r#"{
  "name": "stencil-example",
  "parameters": [
    {"name": "block_size_x", "values": [16, 32, 64, 128, 256]},
    {"name": "block_size_y", "values": [1, 2, 4, 8, 16]},
    {"name": "temporal_tiling_factor", "values": [1, 2, 3, 4]},
    {"name": "use_padding", "values": [0, 1]}
  ],
  "restrictions": [
    "32 <= block_size_x * block_size_y <= 1024",
    "temporal_tiling_factor <= block_size_y",
    "use_padding == 0 or block_size_x >= 32"
  ]
}"#;

fn main() {
    // 1) Parse the specification from JSON.
    let spec = spec_from_json(SPEC_JSON).expect("valid spec file");
    println!(
        "loaded `{}`: {} parameters, {} restrictions, Cartesian size {}",
        spec.name,
        spec.num_params(),
        spec.num_restrictions(),
        spec.cartesian_size()
    );

    // 2) Construct the space with the optimized solver.
    let (space, report) = build_search_space(&spec, Method::Optimized).expect("construction");
    println!(
        "constructed {} valid configurations in {:?}",
        space.len(),
        report.duration
    );

    // 3) Export in the two data formats optimizers and scripts consume.
    let csv = to_csv(&space);
    println!(
        "CSV export: {} lines, header: {}",
        csv.lines().count(),
        csv.lines().next().unwrap_or_default()
    );

    let cache = to_json_cache(&space);
    println!("JSON cache export: {} bytes", cache.len());

    // 4) Round-trip the specification itself back to JSON (e.g. after
    //    programmatically narrowing parameter values).
    let narrowed = {
        let mut s = SearchSpaceSpec::new(format!("{}-narrowed", spec.name));
        for p in &spec.params {
            // keep only the values that actually occur in some valid config
            let occurring = &space.occurring_values()[spec.param_index(p.name()).unwrap()];
            s.add_param(TunableParameter::new(p.name(), occurring.clone()));
        }
        for r in &spec.restrictions {
            s.add_restriction(r.clone());
        }
        s
    };
    let json = spec_to_json(&narrowed).expect("expression-only spec serializes");
    println!(
        "re-exported narrowed spec ({} bytes); first line: {}",
        json.len(),
        json.lines().next().unwrap_or_default()
    );
}
