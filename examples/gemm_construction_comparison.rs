//! Compare every search space construction method on the CLBlast GEMM space
//! (Table 2 / Figure 5 of the paper): brute force, the original unoptimized
//! solver, the optimized solver, the parallel solver, chain-of-trees and the
//! blocking-clause enumerator all produce the same set of configurations at
//! very different costs.
//!
//! Run with: `cargo run --release --example gemm_construction_comparison`

use std::time::Instant;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::workloads::gemm;

fn main() {
    let workload = gemm();
    println!(
        "GEMM search space: {} parameters, {} restrictions, Cartesian size {}",
        workload.spec.num_params(),
        workload.spec.num_restrictions(),
        workload.spec.cartesian_size()
    );
    println!(
        "(paper reports {} valid configurations out of {})\n",
        workload.paper.num_valid, workload.paper.cartesian_size
    );

    // The blocking-clause enumerator is quadratic in the number of solutions;
    // GEMM has ~10^5 of them, so it is excluded here just as PySMT is
    // excluded from the real-world comparison in the paper.
    let methods = [
        Method::BruteForce,
        Method::Original,
        Method::Optimized,
        Method::ParallelOptimized,
        Method::ChainOfTrees,
    ];

    let mut reference: Option<usize> = None;
    let mut optimized_time = None;
    println!(
        "{:<22} {:>12} {:>14} {:>18}",
        "method", "valid", "time", "constraint checks"
    );
    for method in methods {
        let start = Instant::now();
        let (space, report) = build_search_space(&workload.spec, method).expect("construction");
        let elapsed = start.elapsed();
        println!(
            "{:<22} {:>12} {:>14?} {:>18}",
            method.label(),
            space.len(),
            elapsed,
            report.stats.constraint_checks
        );
        match reference {
            None => reference = Some(space.len()),
            Some(r) => assert_eq!(r, space.len(), "methods disagree!"),
        }
        if method == Method::Optimized {
            optimized_time = Some(elapsed);
        }
    }
    if let Some(t) = optimized_time {
        println!(
            "\nall methods agree on the search space; the optimized method resolved it in {t:?}"
        );
    }
}
