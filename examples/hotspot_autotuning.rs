//! End-to-end auto-tuning of the Hotspot search space (the Section 5.4
//! scenario): construct the space, then tune it with several optimization
//! strategies against a simulated kernel under a virtual-time budget.
//!
//! Run with: `cargo run --release --example hotspot_autotuning`

use std::time::Duration;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::tuner::{GeneticAlgorithm, HillClimbing, SimulatedAnnealing};
use autotuning_searchspaces::workloads::{hotspot, performance_model_for};

fn main() {
    let workload = hotspot();
    println!(
        "constructing the Hotspot search space ({} parameters, {} restrictions)…",
        workload.spec.num_params(),
        workload.spec.num_restrictions()
    );
    let (space, report) =
        build_search_space(&workload.spec, Method::Optimized).expect("construction");
    println!(
        "  {} valid configurations out of a Cartesian size of {} ({:?})",
        space.len(),
        report.cartesian_size,
        report.duration
    );

    let model = performance_model_for("Hotspot", &space, 2024);
    let budget = Duration::from_secs(120); // virtual seconds
    let construction = report.duration;

    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        ("random sampling", Box::new(RandomSampling)),
        ("genetic algorithm", Box::new(GeneticAlgorithm::default())),
        ("hill climbing", Box::new(HillClimbing::default())),
        (
            "simulated annealing",
            Box::new(SimulatedAnnealing::default()),
        ),
    ];

    println!("\ntuning with a virtual budget of {budget:?} (construction charged up front):");
    for (name, strategy) in strategies {
        let run = tune(&space, &model, strategy.as_ref(), budget, construction, 99);
        let best = run.best_runtime_ms().unwrap_or(f64::NAN);
        let best_index = run
            .evaluations
            .iter()
            .min_by(|a, b| a.runtime_ms.partial_cmp(&b.runtime_ms).unwrap())
            .map(|e| e.config_index);
        println!(
            "  {:<22} best simulated runtime {:>8.3} ms after {:>5} evaluations",
            name,
            best,
            run.num_evaluations()
        );
        if let Some(id) = best_index {
            println!("      best configuration: {:?}", space.view(id).unwrap());
        }
    }
}
