//! Integration tests of the resolved search space operations on a real-world
//! workload: neighbor symmetry, membership consistency, sampling validity and
//! true bounds.

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::searchspace::{
    coverage_per_parameter, latin_hypercube_sample, neighbors, sample_indices, NeighborIndex,
    NeighborMethod,
};
use autotuning_searchspaces::workloads::dedispersion;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dedispersion_space() -> SearchSpace {
    build_search_space(&dedispersion().spec, Method::Optimized)
        .expect("construction")
        .0
}

#[test]
fn hamming_neighbors_are_symmetric_and_valid_on_a_sample() {
    let space = dedispersion_space();
    let index = NeighborIndex::build(&space);
    let step = (space.len() / 50).max(1);
    for i in (0..space.len()).step_by(step).map(ConfigId::from_index) {
        let ns = neighbors(&space, i, NeighborMethod::Hamming, Some(&index));
        for &j in &ns {
            assert!(j.index() < space.len());
            // exactly one parameter differs (compare the encoded rows)
            let a = space.codes_of(i).unwrap();
            let b = space.codes_of(j).unwrap();
            let differing = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
            assert_eq!(differing, 1);
            // symmetry
            let back = neighbors(&space, j, NeighborMethod::Hamming, Some(&index));
            assert!(back.contains(&i));
        }
    }
}

#[test]
fn strictly_adjacent_neighbors_are_a_subset_of_hamming_neighbors() {
    let space = dedispersion_space();
    let index = NeighborIndex::build(&space);
    let step = (space.len() / 20).max(1);
    for i in (0..space.len()).step_by(step).map(ConfigId::from_index) {
        let hamming = neighbors(&space, i, NeighborMethod::Hamming, Some(&index));
        let strict = neighbors(&space, i, NeighborMethod::StrictlyAdjacent, None);
        for j in strict {
            assert!(hamming.contains(&j));
        }
    }
}

#[test]
fn membership_and_index_lookup_agree_with_enumeration() {
    let space = dedispersion_space();
    for view in space.iter().step_by(37) {
        let config = view.to_vec();
        assert!(space.contains(&config));
        assert_eq!(space.index_of(&config), Some(view.id()));
        assert_eq!(space.index_of_codes(view.codes()), Some(view.id()));
    }
}

#[test]
fn true_bounds_are_within_declared_domains() {
    let space = dedispersion_space();
    for (param, bounds) in space.params().iter().zip(space.true_bounds()) {
        if let Some((lo, hi)) = bounds {
            let declared_min = param
                .values()
                .iter()
                .filter_map(|v| v.as_f64())
                .fold(f64::INFINITY, f64::min);
            let declared_max = param
                .values()
                .iter()
                .filter_map(|v| v.as_f64())
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(lo >= declared_min && hi <= declared_max, "{}", param.name());
            assert!(lo <= hi);
        }
    }
}

#[test]
fn random_and_lhs_samples_are_valid_and_lhs_spreads_over_parameters() {
    let space = dedispersion_space();
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let random = sample_indices(&space, 64, &mut rng);
    assert_eq!(random.len(), 64.min(space.len()));
    assert!(random.iter().all(|&i| i.index() < space.len()));

    let lhs = latin_hypercube_sample(&space, 32, &mut rng);
    assert!(!lhs.is_empty());
    assert!(lhs.iter().all(|&i| i.index() < space.len()));
    let coverage = coverage_per_parameter(&space, &lhs);
    // multi-valued parameters should see a decent spread of their values
    for (param, c) in space.params().iter().zip(coverage) {
        if param.len() >= 4 {
            assert!(c > 0.2, "{} coverage {c}", param.name());
        }
    }
}

#[test]
fn sparsity_matches_definition() {
    let space = dedispersion_space();
    let expected = 1.0 - space.len() as f64 / space.cartesian_size() as f64;
    assert!((space.sparsity() - expected).abs() < 1e-12);
}
