//! Golden-file coverage of the v2 `ATSS` byte layout.
//!
//! `tests/fixtures/v2-small.atss` is a checked-in file written by the v2
//! writer for the space constructed by [`fixture_space`]. The tests here
//! pin the byte layout end to end: any change to the on-disk format —
//! section ordering, framing, padding, value encoding, checksums — fails
//! loudly against the golden bytes instead of silently shipping a file
//! old readers cannot open.
//!
//! After an *intentional* format change, regenerate the fixture with
//! `cargo test --test store_golden_fixture -- --ignored bless` and bump
//! `FORMAT_VERSION` / the assertions below as the change requires.

use autotuning_searchspaces::csp::Value;
use autotuning_searchspaces::searchspace::{SearchSpace, TunableParameter};
use autotuning_searchspaces::store::checksum::crc32;
use autotuning_searchspaces::store::{
    read_space_from_path, write_space, write_space_to_path, FORMAT_VERSION,
};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v2-small.atss")
}

/// The space persisted in the fixture: one parameter of every persistable
/// value type, with a restriction so the row set is not a full cross
/// product (membership lookups must consult the real index).
fn fixture_space() -> SearchSpace {
    let params = vec![
        TunableParameter::ints("block_size_x", [1, 2, 4, 8]),
        TunableParameter::new("precision", vec![Value::str("half"), Value::str("single")]),
        TunableParameter::new("scale", vec![Value::Float(0.5), Value::Float(1.0)]),
        TunableParameter::new("use_cache", vec![Value::Bool(false), Value::Bool(true)]),
    ];
    let mut configs = Vec::new();
    for &x in &[1i64, 2, 4, 8] {
        for p in ["half", "single"] {
            for &s in &[0.5f64, 1.0] {
                for cached in [false, true] {
                    // Drop a corner so membership is non-trivial.
                    if x == 8 && p == "half" && !cached {
                        continue;
                    }
                    configs.push(vec![
                        Value::Int(x),
                        Value::str(p),
                        Value::Float(s),
                        Value::Bool(cached),
                    ]);
                }
            }
        }
    }
    SearchSpace::from_configs("v2-fixture", params, configs).unwrap()
}

/// Read one framed metadata section (tag, u64 payload length, payload,
/// CRC-32 of the payload) and return the payload, advancing `pos`.
fn read_section<'a>(bytes: &'a [u8], pos: &mut usize, expect_tag: &[u8; 4]) -> &'a [u8] {
    let tag = &bytes[*pos..*pos + 4];
    assert_eq!(tag, expect_tag, "section tag at offset {}", *pos);
    let len = u64::from_le_bytes(bytes[*pos + 4..*pos + 12].try_into().unwrap()) as usize;
    let payload = &bytes[*pos + 12..*pos + 12 + len];
    let crc = u32::from_le_bytes(bytes[*pos + 12 + len..*pos + 16 + len].try_into().unwrap());
    assert_eq!(
        crc,
        crc32(payload),
        "{} section CRC",
        String::from_utf8_lossy(&expect_tag[..3])
    );
    *pos += 16 + len;
    payload
}

#[test]
fn fixture_matches_documented_byte_layout() {
    let bytes = std::fs::read(fixture_path()).expect(
        "tests/fixtures/v2-small.atss is checked in; regenerate with \
         `cargo test --test store_golden_fixture -- --ignored bless`",
    );
    let space = fixture_space();
    let (rows, num_params) = (space.len(), space.num_params());

    // Magic + version.
    assert_eq!(&bytes[0..4], b"ATSS");
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        FORMAT_VERSION
    );
    let mut pos = 8;

    // HDR section: name (u32 length + bytes) then parameter count.
    let hdr = read_section(&bytes, &mut pos, b"HDR\0");
    let name_len = u32::from_le_bytes(hdr[0..4].try_into().unwrap()) as usize;
    assert_eq!(&hdr[4..4 + name_len], b"v2-fixture");
    assert_eq!(
        u32::from_le_bytes(hdr[4 + name_len..8 + name_len].try_into().unwrap()),
        num_params as u32
    );
    assert_eq!(hdr.len(), 8 + name_len, "HDR payload is exactly name+count");

    // PAR section: per parameter, name + value count + tagged values.
    // Spot-check the first parameter and the value-tag bytes (1=Int,
    // 2=Float, 3=Bool, 4=Str) the format guide documents.
    let par = read_section(&bytes, &mut pos, b"PAR\0");
    let p0_len = u32::from_le_bytes(par[0..4].try_into().unwrap()) as usize;
    assert_eq!(&par[4..4 + p0_len], b"block_size_x");
    let mut p = 4 + p0_len;
    assert_eq!(u32::from_le_bytes(par[p..p + 4].try_into().unwrap()), 4);
    p += 4;
    for expected in [1i64, 2, 4, 8] {
        assert_eq!(par[p], 1, "Int value tag");
        assert_eq!(
            i64::from_le_bytes(par[p + 1..p + 9].try_into().unwrap()),
            expected
        );
        p += 9;
    }
    // Second parameter starts with its name; its first value is Str-tagged.
    let p1_len = u32::from_le_bytes(par[p..p + 4].try_into().unwrap()) as usize;
    assert_eq!(&par[p + 4..p + 4 + p1_len], b"precision");
    assert_eq!(par[p + 4 + p1_len + 4], 4, "Str value tag");

    // ARN tag, u32 pad length, pad zeros; the arena must start 4-aligned.
    assert_eq!(&bytes[pos..pos + 4], b"ARN\0");
    let pad = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
    assert!(pad <= 3, "pad is at most 3 bytes, found {pad}");
    assert!(bytes[pos + 8..pos + 8 + pad].iter().all(|&b| b == 0));
    let arena_offset = pos + 8 + pad;
    assert_eq!(arena_offset % 4, 0, "arena offset must be 4-byte aligned");

    // Arena: rows × num_params little-endian u32 codes, verbatim.
    let arena_len = rows * num_params * 4;
    let arena = &bytes[arena_offset..arena_offset + arena_len];
    let decoded: Vec<u32> = arena
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    assert_eq!(decoded, space.arena());
    pos = arena_offset + arena_len;

    // IDX section: hash version, slot count, then that many u32 slots.
    let idx = read_section(&bytes, &mut pos, b"IDX\0");
    let num_slots = u32::from_le_bytes(idx[4..8].try_into().unwrap()) as usize;
    assert_eq!(idx.len(), 8 + num_slots * 4, "IDX payload length");

    // 16-byte trailer: END tag, u64 row count, u32 arena CRC — and nothing
    // after it.
    assert_eq!(&bytes[pos..pos + 4], b"END\0");
    assert_eq!(
        u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()),
        rows as u64
    );
    assert_eq!(
        u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().unwrap()),
        crc32(arena)
    );
    assert_eq!(pos + 16, bytes.len(), "trailer ends the file");
}

/// The writer must be deterministic: serializing the reconstructed space
/// reproduces the golden file byte for byte. This is what makes content
/// addressing (and this fixture) stable across builds.
#[test]
fn writer_reproduces_the_golden_bytes() {
    let golden = std::fs::read(fixture_path()).unwrap();
    let mut rewritten = Vec::new();
    write_space(&fixture_space(), &mut rewritten).unwrap();
    assert_eq!(rewritten, golden, "write_space is no longer deterministic");
}

#[test]
fn fixture_loads_back_to_the_reference_space() {
    let (loaded, info) = read_space_from_path(fixture_path()).unwrap();
    assert_eq!(info.version, FORMAT_VERSION);
    assert!(info.index.is_some(), "v2 files carry a membership table");
    let reference = fixture_space();
    assert_eq!(loaded.name(), reference.name());
    assert_eq!(loaded.arena(), reference.arena());
    for view in reference.iter() {
        let row = view.to_vec();
        assert_eq!(loaded.index_of(&row), Some(view.id()));
    }
}

/// Regenerates the fixture. Ignored in normal runs; run explicitly after
/// an intentional format change:
/// `cargo test --test store_golden_fixture -- --ignored bless`
#[test]
#[ignore = "writes tests/fixtures/v2-small.atss; run explicitly to bless"]
fn bless_regenerate_fixture() {
    write_space_to_path(&fixture_space(), fixture_path()).unwrap();
}
