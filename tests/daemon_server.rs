//! Concurrent-client integration suite for the `atssd` space-server.
//!
//! One in-process daemon, many client threads. The contracts under test
//! are the ones the protocol exists for:
//!
//! * **Single-flight** — N concurrent cold resolves of the same spec
//!   trigger exactly one solver run; everyone gets the same entry.
//! * **Identity** — every client attaches to a byte-identical path, and
//!   the daemon-resolved space is code-for-code identical to a local
//!   daemonless construction of the same spec.
//! * **Lifecycle** — stale sockets are taken over, live sockets are
//!   refused, garbage bytes get a clean protocol error without killing
//!   the daemon, shutdown drains clients that are mid-request, and
//!   entries stay pinned (GC-proof) while replies reference them.

#![cfg(unix)]

use std::collections::HashSet;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

use at_daemon::{Daemon, DaemonClient, DaemonConfig, ServeKind};
use at_searchspace::{build_search_space, Method, SearchSpaceSpec, TunableParameter};
use at_store::GcOptions;

fn temp_base(tag: &str) -> PathBuf {
    let base = std::env::temp_dir().join(format!("atssd-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    base
}

/// A small spec that still takes a solver run to resolve.
fn demo_spec(name: &str) -> SearchSpaceSpec {
    SearchSpaceSpec::new(name)
        .with_param(TunableParameter::pow2("block_size_x", 8))
        .with_param(TunableParameter::pow2("block_size_y", 6))
        .with_param(TunableParameter::ints("work_per_thread", 1..=8))
        .with_expr("32 <= block_size_x * block_size_y <= 1024")
        .with_expr("work_per_thread <= block_size_y")
}

fn start_daemon(
    base: &std::path::Path,
) -> (at_daemon::DaemonHandle, thread::JoinHandle<()>, PathBuf) {
    let socket = base.join("atssd.sock");
    let daemon = Daemon::bind(DaemonConfig::new(&socket, base.join("cache"))).unwrap();
    let handle = daemon.handle();
    let join = thread::spawn(move || {
        daemon.run().unwrap();
    });
    (handle, join, socket)
}

#[test]
fn concurrent_cold_resolves_build_exactly_once() {
    let base = temp_base("singleflight");
    let (handle, join, socket) = start_daemon(&base);
    let spec = demo_spec("single-flight");

    const CLIENTS: usize = 8;
    let results: Vec<_> = thread::scope(|s| {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let socket = socket.clone();
                let spec = spec.clone();
                s.spawn(move || {
                    let mut client = DaemonClient::connect(&socket).unwrap();
                    client
                        .resolve_spec(&spec, Method::Optimized, false, |_| {})
                        .unwrap()
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    // Exactly one solver run: one Built, everyone else Warm or Coalesced,
    // and the daemon's own counters agree.
    let built = results
        .iter()
        .filter(|r| r.served == ServeKind::Built)
        .count();
    assert!(built <= 1, "more than one build slipped through");
    for r in &results {
        assert_ne!(r.served, ServeKind::Validated, "cold cache cannot validate");
    }
    let store = handle.store();
    assert_eq!(store.metrics().misses(), 1, "exactly one store miss");
    assert_eq!(store.metrics().hits(), 0);

    // Byte-identical attach paths, identical row counts.
    let paths: HashSet<_> = results.iter().map(|r| r.path.clone()).collect();
    assert_eq!(paths.len(), 1, "all clients attach to the same entry");
    let rows: HashSet<_> = results.iter().map(|r| r.rows).collect();
    assert_eq!(rows.len(), 1);

    // The daemon-resolved space is code-for-code identical to a local
    // daemonless construction.
    let (local, _) = build_search_space(&spec, Method::Optimized).unwrap();
    let attached = results[0].attach().unwrap();
    assert_eq!(attached.space.len(), local.len());
    assert_eq!(attached.space.arena(), local.arena());

    let status = handle.status_json();
    assert!(
        status.contains("\"schema\":\"atss.daemon-status.v1\""),
        "{status}"
    );
    assert!(status.contains("\"builds\":1"), "{status}");

    handle.request_shutdown();
    join.join().unwrap();
    assert!(!socket.exists(), "socket removed on shutdown");
}

#[test]
fn different_specs_build_independently() {
    let base = temp_base("two-specs");
    let (handle, join, socket) = start_daemon(&base);
    let spec_a = demo_spec("space-a");
    let spec_b = demo_spec("space-b").with_expr("block_size_x >= 2");

    let (res_a, res_b) = thread::scope(|s| {
        let sa = socket.clone();
        let a = s.spawn({
            let spec_a = spec_a.clone();
            move || {
                DaemonClient::connect(&sa)
                    .unwrap()
                    .resolve_spec(&spec_a, Method::Optimized, false, |_| {})
                    .unwrap()
            }
        });
        let sb = socket.clone();
        let b = s.spawn({
            let spec_b = spec_b.clone();
            move || {
                DaemonClient::connect(&sb)
                    .unwrap()
                    .resolve_spec(&spec_b, Method::Optimized, false, |_| {})
                    .unwrap()
            }
        });
        (a.join().unwrap(), b.join().unwrap())
    });

    assert_ne!(res_a.fingerprint, res_b.fingerprint);
    assert_ne!(res_a.path, res_b.path);
    assert_eq!(handle.store().metrics().misses(), 2, "one build per spec");
    let status = handle.status_json();
    assert!(status.contains("\"builds\":2"), "{status}");

    handle.request_shutdown();
    join.join().unwrap();
}

#[test]
fn warm_serves_are_validated_once_then_o_header() {
    let base = temp_base("warm");
    let (handle, join, socket) = start_daemon(&base);
    let spec = demo_spec("warm-path");

    let mut client = DaemonClient::connect(&socket).unwrap();
    let cold = client
        .resolve_spec(&spec, Method::Optimized, false, |_| {})
        .unwrap();
    assert_eq!(cold.served, ServeKind::Built);
    assert!(cold.build_us > 0);

    // Same connection, then a fresh connection: both warm, zero build time.
    for _ in 0..2 {
        let warm = client
            .resolve_spec(&spec, Method::Optimized, false, |_| {})
            .unwrap();
        assert_eq!(warm.served, ServeKind::Warm);
        assert_eq!(warm.build_us, 0);
        assert_eq!(warm.path, cold.path);
    }
    let mut fresh = DaemonClient::connect(&socket).unwrap();
    let fp = cold.fingerprint;
    let got = fresh.get(&fp).unwrap().expect("entry exists");
    assert_eq!(got.served, ServeKind::Warm);

    // Unknown fingerprint: clean NotFound, not an error.
    let missing = at_store::SpecFingerprint::from_u128(0xdead_beef);
    assert!(fresh.get(&missing).unwrap().is_none());

    handle.request_shutdown();
    join.join().unwrap();
}

#[test]
fn pinned_entries_survive_daemon_gc() {
    let base = temp_base("pin-gc");
    let socket = base.join("atssd.sock");
    // GC bound of one entry: after the second build the sweep would
    // evict the older entry — unless a reply still pins it.
    let mut config = DaemonConfig::new(&socket, base.join("cache"));
    config.gc = Some(GcOptions {
        max_bytes: u64::MAX,
        max_entries: 1,
    });
    let daemon = Daemon::bind(config).unwrap();
    let handle = daemon.handle();
    let join = thread::spawn(move || {
        daemon.run().unwrap();
    });

    // Hold a connection whose reply pins entry A across the build of B.
    let mut holder = DaemonClient::connect(&socket).unwrap();
    let a = holder
        .resolve_spec(&demo_spec("pinned-a"), Method::Optimized, false, |_| {})
        .unwrap();
    assert!(handle.store().pinned_count() >= 1, "reply pins the entry");

    let mut other = DaemonClient::connect(&socket).unwrap();
    let _b = other
        .resolve_spec(&demo_spec("pinned-b"), Method::Optimized, false, |_| {})
        .unwrap();

    // The sweep after B's build saw 2 entries > max_entries 1, but A is
    // pinned by the holder's outstanding reply: it must still be on disk.
    // The sweep runs in the build worker *after* B's reply is published,
    // so give it a moment to land before reading the counter.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.store().metrics().gc_pin_skips() == 0 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert!(a.path.exists(), "pinned entry evicted while referenced");
    assert!(a.attach().is_ok(), "pinned entry still attachable");
    assert!(
        handle.store().metrics().gc_pin_skips() >= 1,
        "gc sweep never recorded skipping the pinned entry"
    );

    handle.request_shutdown();
    join.join().unwrap();
}

#[test]
fn garbage_bytes_get_a_clean_error_and_the_daemon_survives() {
    let base = temp_base("garbage");
    let (handle, join, socket) = start_daemon(&base);

    // Raw garbage straight onto the socket.
    let mut raw = UnixStream::connect(&socket).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    raw.flush().unwrap();
    // The daemon replies with an ErrorReply frame and closes; draining
    // until EOF proves it didn't just hang up without answering.
    let reply = at_daemon::proto::read_frame(&mut raw).unwrap();
    match reply {
        Some(at_daemon::Frame::ErrorReply { code, .. }) => assert_eq!(code, 400),
        other => panic!("expected ErrorReply, got {other:?}"),
    }
    drop(raw);

    // The daemon is still alive and serving.
    let mut client = DaemonClient::connect(&socket).unwrap();
    let pong = client.ping().unwrap();
    assert_eq!(u64::from(std::process::id()), pong.pid);
    let status = client.status_json().unwrap();
    assert!(status.contains("\"proto_errors\":1"), "{status}");

    handle.request_shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_drains_clients_mid_request() {
    let base = temp_base("drain");
    let (handle, join, socket) = start_daemon(&base);
    let spec = demo_spec("drain-me");

    // A client starts a cold resolve (solver run) and the daemon is told
    // to shut down while the build is in flight. The client must still
    // get its Ready frame; only then may the daemon exit.
    let resolved = thread::scope(|s| {
        let sock = socket.clone();
        let client = s.spawn({
            let spec = spec.clone();
            move || {
                let mut client = DaemonClient::connect(&sock).unwrap();
                client
                    .resolve_spec(&spec, Method::Optimized, false, |_| {})
                    .unwrap()
            }
        });
        // Wait until the daemon has read the request and the build is in
        // flight (a cold resolve records exactly one store miss) before
        // ordering shutdown. Shutdown only guarantees completion for
        // requests already accepted — a connection still sitting in the
        // listener backlog is legitimately refused.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while handle.store().metrics().misses() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "build never started; client cannot be mid-request"
            );
            thread::sleep(Duration::from_millis(2));
        }
        handle.request_shutdown();
        client.join().unwrap()
    });
    join.join().unwrap();
    assert!(resolved.rows > 0);
    assert!(resolved.path.exists(), "drained build was persisted");
    assert!(!socket.exists(), "socket removed after drain");
}

#[test]
fn stale_sockets_are_taken_over_and_live_ones_refused() {
    let base = temp_base("takeover");
    let socket = base.join("atssd.sock");

    // A stale socket file nobody is listening on (a crashed daemon).
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists());
    let daemon = Daemon::bind(DaemonConfig::new(&socket, base.join("cache"))).unwrap();

    // While it is live, a second bind must refuse.
    let handle = daemon.handle();
    let join = thread::spawn(move || {
        daemon.run().unwrap();
    });
    DaemonClient::connect_with_retry(&socket, Duration::from_secs(5)).unwrap();
    let err = match Daemon::bind(DaemonConfig::new(&socket, base.join("cache2"))) {
        Err(e) => e,
        Ok(_) => panic!("second bind on a live socket must refuse"),
    };
    assert!(
        matches!(err, at_daemon::DaemonError::AlreadyRunning { .. }),
        "{err}"
    );

    // The pidfile names this process while running.
    let pidfile = base.join("atssd.sock.pid");
    let pid: u32 = std::fs::read_to_string(&pidfile)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(pid, std::process::id());

    handle.request_shutdown();
    join.join().unwrap();
    assert!(!pidfile.exists(), "pidfile removed on shutdown");
}
