//! Property-based tests for the static analyzer (`at_check`) and
//! analyzer-driven domain pre-pruning.
//!
//! Two properties, on randomly generated small specs:
//!
//! 1. **Pruned ≡ unpruned**: constructing with `BuildOptions { prune: true }`
//!    yields a byte-identical arena to constructing without it (or both
//!    fail identically), for **all six** construction methods.
//! 2. **Differential soundness**: every claim `check_spec` makes —
//!    per-restriction tautology/contradiction verdicts and prunable
//!    domain values — is checked against exhaustive enumeration with the
//!    reference interpreter under the error→reject convention.

use proptest::prelude::*;
use rustc_hash::FxHashMap;

use autotuning_searchspaces::check::{check_spec, Verdict};
use autotuning_searchspaces::csp::value::Value;
use autotuning_searchspaces::expr;
use autotuning_searchspaces::searchspace::builder::{
    build_search_space_with, BuildOptions, Method,
};
use autotuning_searchspaces::searchspace::{Restriction, SearchSpaceSpec, TunableParameter};

/// One randomly generated restriction over parameters `p0..pN`.
#[derive(Debug, Clone)]
enum RandomRestriction {
    /// `pA * pB <= K` — lowered to the specific `MaxProduct` constraint.
    MaxProduct(usize, usize, i64),
    /// `pA + pB >= K` — lowered to the specific `MinSum` constraint.
    MinSum(usize, usize, i64),
    /// The pervasive guard idiom `pA % pB == 0 or pB == 0`.
    ModGuard(usize, usize),
    /// `pA <= pB`.
    Compare(usize, usize),
    /// `pA in [..constants..]`.
    Membership(usize, Vec<i64>),
    /// `pA >= K` — tautological, contradictory, or contingent depending
    /// on how `K` relates to the generated domain.
    Threshold(usize, i64),
}

impl RandomRestriction {
    fn source(&self) -> String {
        match self {
            RandomRestriction::MaxProduct(a, b, k) => format!("p{a} * p{b} <= {k}"),
            RandomRestriction::MinSum(a, b, k) => format!("p{a} + p{b} >= {k}"),
            RandomRestriction::ModGuard(a, b) => format!("p{a} % p{b} == 0 or p{b} == 0"),
            RandomRestriction::Compare(a, b) => format!("p{a} <= p{b}"),
            RandomRestriction::Membership(a, set) => {
                let items: Vec<String> = set.iter().map(|v| v.to_string()).collect();
                format!("p{a} in [{}]", items.join(", "))
            }
            RandomRestriction::Threshold(a, k) => format!("p{a} >= {k}"),
        }
    }
}

#[derive(Debug, Clone)]
struct RandomSpec {
    domains: Vec<Vec<i64>>,
    restrictions: Vec<RandomRestriction>,
}

fn random_restriction(n: usize) -> impl Strategy<Value = RandomRestriction> {
    prop_oneof![
        (0..n, 0..n, 1i64..100).prop_map(|(a, b, k)| RandomRestriction::MaxProduct(a, b, k)),
        (0..n, 0..n, 1i64..20).prop_map(|(a, b, k)| RandomRestriction::MinSum(a, b, k)),
        (0..n, 0..n).prop_map(|(a, b)| RandomRestriction::ModGuard(a, b)),
        (0..n, 0..n).prop_map(|(a, b)| RandomRestriction::Compare(a, b)),
        (0..n, proptest::collection::vec(0i64..10, 1..4))
            .prop_map(|(a, set)| RandomRestriction::Membership(a, set)),
        (0..n, -3i64..12).prop_map(|(a, k)| RandomRestriction::Threshold(a, k)),
    ]
}

fn random_spec() -> impl Strategy<Value = RandomSpec> {
    let domain = proptest::collection::vec(-2i64..10, 1..6);
    let domains = proptest::collection::vec(domain, 2..5);
    domains.prop_flat_map(|domains| {
        let n = domains.len();
        let restrictions = proptest::collection::vec(random_restriction(n), 1..4);
        (Just(domains), restrictions).prop_map(|(domains, restrictions)| RandomSpec {
            domains,
            restrictions,
        })
    })
}

fn build_spec(rs: &RandomSpec) -> SearchSpaceSpec {
    let mut spec = SearchSpaceSpec::new("proptest-check");
    for (i, d) in rs.domains.iter().enumerate() {
        // Deduplicate, preserving generation order: domains are ordered
        // lists, and the identity property is about that exact order.
        let mut values: Vec<Value> = Vec::new();
        for &v in d {
            if !values.contains(&Value::Int(v)) {
                values.push(Value::Int(v));
            }
        }
        spec.add_param(TunableParameter::new(format!("p{i}"), values));
    }
    for r in &rs.restrictions {
        spec.add_restriction(Restriction::expr(r.source()));
    }
    spec
}

/// Exhaustively evaluate `expr` over the full cartesian product of the
/// spec's parameter domains, under the error→reject convention. Returns
/// `(n_sat, n_total, support)` where `support[i][j]` records whether
/// domain value `j` of parameter `i` appears in a satisfying assignment.
fn brute_force(expr: &expr::Expr, spec: &SearchSpaceSpec) -> (u64, u64, Vec<Vec<bool>>) {
    let domains: Vec<(&str, &[Value])> =
        spec.params.iter().map(|p| (p.name(), p.values())).collect();
    let mut support: Vec<Vec<bool>> = domains.iter().map(|(_, v)| vec![false; v.len()]).collect();
    let mut indices = vec![0usize; domains.len()];
    let (mut n_sat, mut n_total) = (0u64, 0u64);
    loop {
        let env: FxHashMap<String, Value> = domains
            .iter()
            .zip(&indices)
            .map(|((name, values), &i)| (name.to_string(), values[i].clone()))
            .collect();
        n_total += 1;
        let sat = matches!(expr.evaluate(&env), Ok(v) if v.truthy());
        if sat {
            n_sat += 1;
            for (row, &i) in support.iter_mut().zip(&indices) {
                row[i] = true;
            }
        }
        let mut pos = domains.len();
        loop {
            if pos == 0 {
                return (n_sat, n_total, support);
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < domains[pos].1.len() {
                break;
            }
            indices[pos] = 0;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Analyzer-driven pre-pruning must not change the constructed space —
    /// byte-for-byte — under any of the six construction methods.
    #[test]
    fn pruning_preserves_the_space_for_every_method(rs in random_spec()) {
        let spec = build_spec(&rs);
        for method in Method::all() {
            let plain = build_search_space_with(&spec, method, BuildOptions::default());
            let pruned = build_search_space_with(
                &spec,
                method,
                BuildOptions { prune: true, ..Default::default() },
            );
            match (plain, pruned) {
                (Ok((plain, _)), Ok((pruned, _))) => {
                    prop_assert!(
                        plain.arena() == pruned.arena(),
                        "{method:?}: pre-pruning changed the arena for {:?}",
                        rs.restrictions.iter().map(|r| r.source()).collect::<Vec<_>>()
                    );
                    prop_assert_eq!(plain.len(), pruned.len());
                }
                (Err(_), Err(_)) => {}
                (plain, pruned) => prop_assert!(
                    false,
                    "{method:?}: pre-pruning changed constructibility: \
                     plain={:?} pruned={:?}",
                    plain.as_ref().err(),
                    pruned.as_ref().err()
                ),
            }
        }
    }

    /// Every claim the analyzer makes must agree with exhaustive
    /// enumeration by the reference interpreter.
    #[test]
    fn analyzer_claims_match_brute_force(rs in random_spec()) {
        let spec = build_spec(&rs);
        let report = check_spec(&spec);
        prop_assert_eq!(report.verdicts.len(), rs.restrictions.len());

        // Per-restriction verdict soundness.
        let mut conjunction_support: Option<Vec<Vec<bool>>> = None;
        for (i, r) in rs.restrictions.iter().enumerate() {
            let source = r.source();
            let expr = expr::parse(&source).expect("generated restrictions parse");
            let (n_sat, n_total, support) = brute_force(&expr, &spec);
            match report.verdicts[i] {
                Some(Verdict::Contradiction) => {
                    prop_assert_eq!(
                        n_sat, 0,
                        "{source:?} called a contradiction but {n_sat}/{n_total} satisfy it"
                    );
                    // A contradiction anywhere makes the whole space empty.
                    if let Ok((space, _)) =
                        build_search_space_with(&spec, Method::BruteForce, BuildOptions::default())
                    {
                        prop_assert_eq!(
                            space.len(), 0,
                            "{source:?} called a contradiction but the space is non-empty"
                        );
                    }
                }
                Some(Verdict::Tautology) => {
                    prop_assert_eq!(
                        n_sat, n_total,
                        "{source:?} called a tautology but only {n_sat}/{n_total} satisfy it"
                    );
                    // Dropping a proven tautology must leave the space
                    // byte-identical (under declaration-order enumeration).
                    let mut dropped = RandomSpec {
                        domains: rs.domains.clone(),
                        restrictions: rs.restrictions.clone(),
                    };
                    dropped.restrictions.remove(i);
                    let dropped = build_spec(&dropped);
                    // The lowering may refuse shapes the analyzer can
                    // still reason about, so only compare when both build.
                    if let (Ok((kept, _)), Ok((bare, _))) = (
                        build_search_space_with(&spec, Method::BruteForce, BuildOptions::default()),
                        build_search_space_with(&dropped, Method::BruteForce, BuildOptions::default()),
                    ) {
                        prop_assert!(
                            kept.arena() == bare.arena(),
                            "dropping tautology {source:?} changed the constructed space"
                        );
                    }
                }
                _ => {}
            }
            // Intersect per-restriction support into support for the
            // conjunction of all restrictions.
            conjunction_support = Some(match conjunction_support {
                None => support,
                Some(acc) => acc
                    .into_iter()
                    .zip(support)
                    .map(|(a, b)| a.into_iter().zip(b).map(|(x, y)| x && y).collect())
                    .collect(),
            });
        }

        // Prunable soundness: a value the analyzer prunes is excluded by
        // at least one restriction, hence by their conjunction. (The
        // converse need not hold — the analyzer only claims what it can
        // prove — so this checks soundness, not completeness.)
        let conjunction_support = conjunction_support.expect("at least one restriction");
        for p in &report.prunable {
            let idx = spec
                .params
                .iter()
                .position(|param| param.name() == p.param)
                .expect("prunable report names a spec parameter");
            for value in &p.values {
                let vi = spec.params[idx]
                    .values()
                    .iter()
                    .position(|v| v == value)
                    .expect("prunable value is in the parameter's domain");
                prop_assert!(
                    !conjunction_support[idx][vi],
                    "analyzer claims {}={value:?} is prunable, but a satisfying \
                     assignment of every restriction uses it (restrictions: {:?})",
                    p.param,
                    rs.restrictions.iter().map(|r| r.source()).collect::<Vec<_>>()
                );
            }
        }
    }
}
