//! Property-based tests of the constraint expression pipeline: the optimizing
//! lowering (folding + decomposition + specific-constraint recognition) must
//! accept exactly the same configurations as the direct AST interpretation,
//! for randomly generated expressions and assignments.

use proptest::prelude::*;
use rustc_hash::FxHashMap;

use autotuning_searchspaces::csp::Value;
use autotuning_searchspaces::expr::{fold, parse, parse_restriction, parse_restriction_generic};

/// Generate random constraint expression source strings over x, y, z.
fn expression() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("z".to_string()),
        (1i64..64).prop_map(|v| v.to_string()),
    ];
    let product = proptest::collection::vec(atom.clone(), 1..3).prop_map(|parts| parts.join(" * "));
    let sum = proptest::collection::vec(atom, 1..3).prop_map(|parts| parts.join(" + "));
    let side = prop_oneof![product, sum];
    let op = prop_oneof![
        Just("<="),
        Just("<"),
        Just(">="),
        Just(">"),
        Just("=="),
        Just("!=")
    ];
    let comparison = (side.clone(), op, side).prop_map(|(l, o, r)| format!("{l} {o} {r}"));
    let chained = (1i64..16, 1i64..64).prop_map(|(lo, hi)| {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        format!("{lo} <= x * y <= {hi}")
    });
    let membership = proptest::collection::vec(1i64..16, 1..4).prop_map(|vals| {
        format!(
            "x in [{}]",
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    });
    let clause = prop_oneof![comparison, chained, membership];
    proptest::collection::vec(clause, 1..3).prop_map(|clauses| clauses.join(" and "))
}

fn env(x: i64, y: i64, z: i64) -> FxHashMap<String, Value> {
    [
        ("x".to_string(), Value::Int(x)),
        ("y".to_string(), Value::Int(y)),
        ("z".to_string(), Value::Int(z)),
    ]
    .into_iter()
    .collect()
}

fn evaluate_parsed(
    parsed: &autotuning_searchspaces::expr::ParsedRestriction,
    env: &FxHashMap<String, Value>,
) -> bool {
    if parsed.always_false {
        return false;
    }
    parsed.constraints.iter().all(|c| {
        let values: Vec<Value> = c.scope.iter().map(|n| env[n].clone()).collect();
        c.constraint.evaluate(&values)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimized_lowering_matches_reference_interpreter(
        source in expression(),
        x in 1i64..32,
        y in 1i64..32,
        z in 1i64..32,
    ) {
        let expr = fold(parse(&source).unwrap());
        let environment = env(x, y, z);
        let reference = expr.evaluate(&environment).unwrap().truthy();
        let optimized = parse_restriction(&source).unwrap();
        let generic = parse_restriction_generic(&source).unwrap();
        prop_assert_eq!(evaluate_parsed(&optimized, &environment), reference, "optimized: {}", source);
        prop_assert_eq!(evaluate_parsed(&generic, &environment), reference, "generic: {}", source);
    }

    #[test]
    fn decomposition_never_increases_scope(source in expression()) {
        let parsed = parse_restriction(&source).unwrap();
        let full_scope = fold(parse(&source).unwrap()).variables();
        for c in &parsed.constraints {
            for var in &c.scope {
                prop_assert!(full_scope.contains(var), "{}: scope {:?}", source, c.scope);
            }
            prop_assert!(!c.scope.is_empty());
        }
    }
}
