//! Cross-crate integration tests: every construction method must produce the
//! identical search space on the real-world workloads that are small enough
//! to cross-check exhaustively (the validation the paper performs against a
//! brute-force reference for every solver).

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::workloads::{atf_prl, dedispersion, generate, SyntheticConfig};

fn assert_all_methods_agree(spec: &SearchSpaceSpec, methods: &[Method]) {
    let (reference, _) = build_search_space(spec, methods[0]).expect("reference construction");
    for &method in &methods[1..] {
        let (space, _) = build_search_space(spec, method).expect("construction");
        assert_eq!(
            space.len(),
            reference.len(),
            "{}: {} finds a different number of configurations",
            spec.name,
            method.label()
        );
        for config in reference.iter_decoded() {
            assert!(
                space.contains(&config),
                "{}: {} is missing {:?}",
                spec.name,
                method.label(),
                config
            );
        }
    }
}

#[test]
fn dedispersion_all_methods_agree() {
    let w = dedispersion();
    assert_all_methods_agree(
        &w.spec,
        &[
            Method::BruteForce,
            Method::Original,
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
        ],
    );
}

#[test]
fn atf_prl_2x2_all_methods_agree() {
    let w = atf_prl(2);
    assert_all_methods_agree(
        &w.spec,
        &[
            Method::BruteForce,
            Method::Original,
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
        ],
    );
}

#[test]
fn synthetic_spaces_all_methods_agree_including_blocking_clause() {
    // small synthetic spaces so the quadratic blocking-clause enumerator stays fast
    for seed in [1u64, 2, 3] {
        let spec = generate(SyntheticConfig {
            dimensions: 3,
            target_cartesian_size: 1_000,
            num_constraints: 3,
            seed,
        });
        assert_all_methods_agree(
            &spec,
            &[
                Method::BruteForce,
                Method::Original,
                Method::Optimized,
                Method::ParallelOptimized,
                Method::ChainOfTrees,
                Method::BlockingClause,
            ],
        );
    }
}

#[test]
fn every_configuration_reported_by_the_optimized_solver_is_valid() {
    let w = dedispersion();
    let problem = w
        .spec
        .to_problem(RestrictionLowering::Generic)
        .expect("lowering");
    let (space, _) = build_search_space(&w.spec, Method::Optimized).expect("construction");
    for config in space.iter_decoded() {
        assert!(problem.is_valid_configuration(&config));
    }
}

#[test]
fn optimized_and_generic_lowerings_produce_the_same_space() {
    let w = dedispersion();
    let (optimized, _) = build_search_space_with(
        &w.spec,
        Method::Optimized,
        BuildOptions {
            lowering: Some(RestrictionLowering::Optimized),
            ..Default::default()
        },
    )
    .expect("construction");
    let (generic, _) = build_search_space_with(
        &w.spec,
        Method::Optimized,
        BuildOptions {
            lowering: Some(RestrictionLowering::Generic),
            ..Default::default()
        },
    )
    .expect("construction");
    assert_eq!(optimized.len(), generic.len());
    for config in optimized.iter_decoded() {
        assert!(generic.contains(&config));
    }
}
