//! Regression replay of the fuzzing corpus.
//!
//! Every input the fuzzer ever minimized into `tests/fuzz_corpus/` is run
//! through its target on every `cargo test`: a crash found once stays
//! fixed forever. The corpus policy is documented in the README's
//! "Fuzzing & corpus policy" section.

use std::path::Path;

use at_fuzz::{replay_corpus, run_target, Target};

fn corpus_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fuzz_corpus")
}

#[test]
fn corpus_replays_clean() {
    match replay_corpus(&corpus_root()) {
        Ok(replayed) => {
            // The checked-in regressions from the bugs this harness found
            // plus the deterministic daemon_proto frame seeds.
            assert!(
                replayed >= 22,
                "corpus looks truncated: only {replayed} inputs found"
            );
        }
        Err(failures) => {
            for (path, failure) in &failures {
                eprintln!("{}: {failure}", path.display());
            }
            panic!("{} corpus inputs regressed", failures.len());
        }
    }
}

/// A short fixed-seed smoke run of every target, so plain `cargo test`
/// exercises the differential oracles themselves, not just the corpus.
#[test]
fn fixed_seed_smoke() {
    let config = at_fuzz::FuzzConfig {
        iters: 300,
        seed: 0x5EED,
        corpus_dir: corpus_root(),
        write_crashes: false,
    };
    for target in Target::ALL {
        let report = at_fuzz::fuzz_target(target, &config);
        assert!(
            report.is_clean(),
            "{} failed in smoke run: {:?}",
            target.name(),
            report.crash
        );
    }
}

/// The corpus directory names must all be valid target names, so a typo'd
/// directory cannot silently skip replay.
#[test]
fn corpus_directories_match_targets() {
    for entry in std::fs::read_dir(corpus_root()).expect("corpus dir exists") {
        let entry = entry.expect("readable entry");
        if entry.path().is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            assert!(
                Target::from_name(&name).is_some(),
                "corpus directory {name:?} is not a fuzz target"
            );
        }
    }
}

/// The named historical regressions, asserted individually so a failure
/// points straight at the bug class that resurfaced.
#[test]
fn named_regressions_still_pass() {
    let cases: [(Target, &[u8]); 4] = [
        // VM `and`/`or` chains must coerce their result to Bool.
        (
            Target::ExprPipeline,
            b"-(y or 4.25 > x >= y >= block_size_x < y <= tile)",
        ),
        // `True * z` must not be recognized as a bare `z` comparison.
        (Target::ExprPipeline, b"True*z!=(0*0 )"),
        // Divides/ModuloEquals must follow Value::rem float semantics.
        (Target::ExprPipeline, b"y %y == False and ie"),
        // Zero-weight sum terms keep their variable in scope.
        (Target::ExprPipeline, b"8>y+False*z"),
    ];
    for (target, input) in cases {
        if let Err(failure) = run_target(target, input) {
            panic!(
                "regression resurfaced on {}: {failure}",
                String::from_utf8_lossy(input)
            );
        }
    }
}
