//! Property tests for the expression pipeline's internal contracts:
//!
//! * **Display round-trip** — for any expression the parser can produce,
//!   `parse(&expr.to_string())` returns the identical AST. Arbitrary
//!   constructed ASTs are first *normalized* through one print/parse
//!   cycle (constructed forms like a single-element `And` have no exact
//!   source spelling), after which printing is a fixed point.
//! * **Fold soundness** — folding never changes the verdict: same
//!   truthiness on `Ok`, an error exactly when the original errors.
//! * **Compile/VM agreement** — when the folded expression compiles, the
//!   VM agrees with the AST interpreter on every sampled assignment.

use proptest::prelude::*;
use rustc_hash::FxHashMap;

use autotuning_searchspaces::csp::{CmpOp, Value};
use autotuning_searchspaces::expr::{compile_auto, fold, parse, BinOp, BuiltinFn, Expr};

/// The vendored proptest shim has no `bool` module; a two-value range
/// stands in for `any::<bool>()`.
fn any_bool() -> impl Strategy<Value = bool> + Clone {
    (0u32..2).prop_map(|v| v == 1)
}

fn leaf() -> impl Strategy<Value = Expr> + Clone {
    prop_oneof![
        Just(Expr::Var("x".to_string())),
        Just(Expr::Var("y".to_string())),
        Just(Expr::Var("z".to_string())),
        (-9i64..100).prop_map(|v| Expr::Const(Value::Int(v))),
        (-16i64..64).prop_map(|v| Expr::Const(Value::Float(v as f64 / 4.0))),
        any_bool().prop_map(|b| Expr::Const(Value::Bool(b))),
    ]
}

fn bin_op() -> impl Strategy<Value = BinOp> + Clone {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::FloorDiv),
        Just(BinOp::Mod),
        Just(BinOp::Pow),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> + Clone {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

/// Combine sub-expressions one level up. The vendored proptest has no
/// `prop_recursive`, so depth is built by explicit stacking.
fn layer(inner: BoxedStrategy<Expr>) -> BoxedStrategy<Expr> {
    let unary = prop_oneof![
        inner.clone().prop_map(|e| Expr::Neg(Box::new(e))),
        inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
    ];
    let binary = (bin_op(), inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    });
    let compare = (
        inner.clone(),
        proptest::collection::vec((cmp_op(), inner.clone()), 1..3),
    )
        .prop_map(|(first, rest)| Expr::Compare {
            first: Box::new(first),
            rest,
        });
    let connective = (any_bool(), proptest::collection::vec(inner.clone(), 2..4))
        .prop_map(|(is_and, es)| if is_and { Expr::And(es) } else { Expr::Or(es) });
    let membership = (
        inner.clone(),
        proptest::collection::vec(inner.clone(), 1..4),
        any_bool(),
    )
        .prop_map(|(value, set, negated)| Expr::In {
            value: Box::new(value),
            set,
            negated,
        });
    let call = (
        prop_oneof![Just(BuiltinFn::Min), Just(BuiltinFn::Max)],
        proptest::collection::vec(inner.clone(), 2..4),
    )
        .prop_map(|(func, args)| Expr::Call { func, args });
    let abs = inner.clone().prop_map(|e| Expr::Call {
        func: BuiltinFn::Abs,
        args: vec![e],
    });
    prop_oneof![inner, unary, binary, compare, connective, membership, call, abs].boxed()
}

fn expression() -> BoxedStrategy<Expr> {
    layer(layer(leaf().boxed()))
}

fn environments() -> Vec<FxHashMap<String, Value>> {
    let pools: [[Value; 3]; 4] = [
        [Value::Int(2), Value::Int(3), Value::Int(0)],
        [Value::Int(-1), Value::Float(0.5), Value::Int(7)],
        [Value::Float(0.0), Value::Int(1), Value::Bool(true)],
        [Value::str("half"), Value::Int(4), Value::Int(2)],
    ];
    pools
        .iter()
        .map(|pool| {
            [
                ("x".to_string(), pool[0].clone()),
                ("y".to_string(), pool[1].clone()),
                ("z".to_string(), pool[2].clone()),
            ]
            .into_iter()
            .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_is_a_fixed_point_after_one_normalization(ast in expression()) {
        // Constructed ASTs may have no exact source spelling; one
        // print/parse cycle lands in the parser's image...
        let printed = ast.to_string();
        let normalized = parse(&printed)
            .unwrap_or_else(|e| panic!("display output failed to reparse: {printed:?}: {e}"));
        // ...where printing must round-trip to the identical AST.
        let reprinted = normalized.to_string();
        let reparsed = parse(&reprinted)
            .unwrap_or_else(|e| panic!("second print failed to reparse: {reprinted:?}: {e}"));
        prop_assert_eq!(&reparsed, &normalized, "print is not a fixed point: {}", printed);

        // And normalization preserves semantics on every sampled env.
        for env in environments() {
            let a = ast.evaluate(&env);
            let b = normalized.evaluate(&env);
            match (a, b) {
                (Ok(va), Ok(vb)) => prop_assert_eq!(
                    va.truthy(), vb.truthy(),
                    "normalization changed the verdict of {} under {:?}", printed, env
                ),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "normalization changed error behaviour of {} under {:?}: {:?} vs {:?}",
                    printed, env, a, b
                ),
            }
        }
    }

    #[test]
    fn fold_and_vm_agree_with_the_interpreter(ast in expression()) {
        let printed = ast.to_string();
        let Ok(expr) = parse(&printed) else { return };
        let folded = fold(expr.clone());
        let compiled = compile_auto(&folded).ok();
        for env in environments() {
            let reference = expr.evaluate(&env);
            let after_fold = folded.evaluate(&env);
            match (&reference, &after_fold) {
                (Ok(a), Ok(b)) => prop_assert_eq!(
                    a.truthy(), b.truthy(),
                    "fold changed the verdict of {} under {:?}", printed, env
                ),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "fold changed error behaviour of {} under {:?}: {:?} vs {:?}",
                    printed, env, reference, after_fold
                ),
            }
            if let Some((program, scope)) = &compiled {
                let values: Vec<Value> = scope.iter().map(|n| env[n].clone()).collect();
                let vm = program.eval(&values);
                match (&after_fold, &vm) {
                    (Ok(a), Ok(b)) => prop_assert_eq!(
                        a.truthy(), b.truthy(),
                        "VM diverged from interpreter on {} under {:?}", printed, env
                    ),
                    (Err(_), Err(_)) => {}
                    _ => prop_assert!(
                        false,
                        "VM error behaviour diverged on {} under {:?}: {:?} vs {:?}",
                        printed, env, after_fold, vm
                    ),
                }
            }
        }
    }
}
