//! End-to-end tuning integration tests (the Section 5.4 scenario): search
//! space construction feeding into budgeted tuning with simulated kernels.

use std::time::Duration;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::tuner::{GeneticAlgorithm, HillClimbing};
use autotuning_searchspaces::workloads::{dedispersion, gemm, performance_model_for};

#[test]
fn construction_time_eats_into_the_tuning_budget() {
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let model = performance_model_for("Dedispersion", &space, 7);
    let budget = Duration::from_secs(30);

    let fast = tune(&space, &model, &RandomSampling, budget, Duration::ZERO, 11);
    let slow = tune(
        &space,
        &model,
        &RandomSampling,
        budget,
        Duration::from_secs(25),
        11,
    );
    assert!(fast.num_evaluations() > slow.num_evaluations());
    // with the same seed, the slow run's evaluations are a prefix of the fast run's
    for (a, b) in slow.evaluations.iter().zip(fast.evaluations.iter()) {
        assert_eq!(a.config_index, b.config_index);
    }
    // and its best configuration can therefore not be better
    if let (Some(slow_best), Some(fast_best)) = (slow.best_runtime_ms(), fast.best_runtime_ms()) {
        assert!(fast_best <= slow_best);
    }
}

#[test]
fn all_strategies_only_evaluate_valid_configurations_of_gemm() {
    let (space, report) = build_search_space(&gemm().spec, Method::Optimized).unwrap();
    assert!(report.num_valid > 0);
    let model = performance_model_for("GEMM", &space, 3);
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(RandomSampling),
        Box::new(GeneticAlgorithm::default()),
        Box::new(HillClimbing::default()),
    ];
    for strategy in strategies {
        let run = tune(
            &space,
            &model,
            strategy.as_ref(),
            Duration::from_secs(20),
            Duration::ZERO,
            5,
        );
        assert!(run.num_evaluations() > 0);
        for e in &run.evaluations {
            assert!(e.config_index.index() < space.len());
            assert!(e.runtime_ms > 0.0);
            assert!(e.finished_at_ms <= run.budget_ms);
        }
    }
}

#[test]
fn tuning_runs_are_reproducible_per_seed() {
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let model = performance_model_for("Dedispersion", &space, 1);
    let a = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        42,
    );
    let b = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        42,
    );
    let c = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        43,
    );
    assert_eq!(a.evaluations, b.evaluations);
    assert_ne!(
        a.evaluations.first().map(|e| e.config_index),
        c.evaluations.first().map(|e| e.config_index)
    );
}
