//! End-to-end tuning integration tests (the Section 5.4 scenario): search
//! space construction feeding into budgeted tuning with simulated kernels.

use std::time::Duration;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::tuner::{GeneticAlgorithm, HillClimbing};
use autotuning_searchspaces::workloads::{dedispersion, gemm, performance_model_for};

#[test]
fn construction_time_eats_into_the_tuning_budget() {
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let model = performance_model_for("Dedispersion", &space, 7);
    let budget = Duration::from_secs(30);

    let fast = tune(&space, &model, &RandomSampling, budget, Duration::ZERO, 11);
    let slow = tune(
        &space,
        &model,
        &RandomSampling,
        budget,
        Duration::from_secs(25),
        11,
    );
    assert!(fast.num_evaluations() > slow.num_evaluations());
    // with the same seed, the slow run's evaluations are a prefix of the fast run's
    for (a, b) in slow.evaluations.iter().zip(fast.evaluations.iter()) {
        assert_eq!(a.config_index, b.config_index);
    }
    // and its best configuration can therefore not be better
    if let (Some(slow_best), Some(fast_best)) = (slow.best_runtime_ms(), fast.best_runtime_ms()) {
        assert!(fast_best <= slow_best);
    }
}

#[test]
fn all_strategies_only_evaluate_valid_configurations_of_gemm() {
    let (space, report) = build_search_space(&gemm().spec, Method::Optimized).unwrap();
    assert!(report.num_valid > 0);
    let model = performance_model_for("GEMM", &space, 3);
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(RandomSampling),
        Box::new(GeneticAlgorithm::default()),
        Box::new(HillClimbing::default()),
    ];
    for strategy in strategies {
        let run = tune(
            &space,
            &model,
            strategy.as_ref(),
            Duration::from_secs(20),
            Duration::ZERO,
            5,
        );
        assert!(run.num_evaluations() > 0);
        for e in &run.evaluations {
            assert!(e.config_index.index() < space.len());
            assert!(e.runtime_ms > 0.0);
            assert!(e.finished_at_ms <= run.budget_ms);
        }
    }
}

#[test]
fn tuning_on_a_store_loaded_space_matches_tuning_on_the_cold_build() {
    // The production loop the ROADMAP aims at: the space is solved once,
    // persisted, and every later tuning session loads it pre-resolved. The
    // loaded space must drive the tuner identically — same ids, same
    // evaluations — and only charge the (much cheaper) load time to the
    // budget.
    let store_dir = std::env::temp_dir().join("at-tuning-e2e-store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SpaceStore::new(&store_dir).unwrap();
    let spec = dedispersion().spec;

    let (cold, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
    assert!(!outcome.status.is_hit());
    let (warm, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
    assert!(outcome.status.is_hit());

    let model = performance_model_for("Dedispersion", &cold, 7);
    let budget = Duration::from_secs(10);
    let on_cold = tune(&cold, &model, &RandomSampling, budget, Duration::ZERO, 42);
    let on_warm = tune(&warm, &model, &RandomSampling, budget, Duration::ZERO, 42);
    assert_eq!(on_cold.evaluations, on_warm.evaluations);

    // Charging the warm-load duration instead of a construction leaves
    // strictly more budget for evaluations than charging a slow build.
    let warm_loaded = tune(&warm, &model, &RandomSampling, budget, outcome.duration, 42);
    let slow_build = tune(
        &warm,
        &model,
        &RandomSampling,
        budget,
        Duration::from_secs(8),
        42,
    );
    assert!(warm_loaded.num_evaluations() >= slow_build.num_evaluations());
}

#[test]
fn tuning_on_a_zero_copy_mmap_space_matches_the_cold_build() {
    use autotuning_searchspaces::store::LoadOptions;

    let store_dir = std::env::temp_dir().join("at-tuning-e2e-mmap");
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = SpaceStore::new(&store_dir).unwrap();
    let spec = dedispersion().spec;

    let (cold, _) = store.get_or_build(&spec, Method::Optimized).unwrap();
    let (mapped, outcome) = store
        .get_or_build_with_options(
            &spec,
            Method::Optimized,
            BuildOptions::default(),
            LoadOptions::mmap_trusted(),
        )
        .unwrap();
    assert!(outcome.status.is_hit());
    if cfg!(target_os = "linux") {
        assert!(mapped.is_zero_copy());
    }

    // Same ids, same evaluations: the tuner cannot tell the storages apart.
    let model = performance_model_for("Dedispersion", &cold, 7);
    let budget = Duration::from_secs(10);
    let on_cold = tune(&cold, &model, &RandomSampling, budget, Duration::ZERO, 42);
    let on_mapped = tune(&mapped, &model, &RandomSampling, budget, Duration::ZERO, 42);
    assert_eq!(on_cold.evaluations, on_mapped.evaluations);
}

#[test]
fn parallel_fanout_reproduces_the_serial_run_on_a_real_workload() {
    // The batched pipeline's core guarantee, end to end: the same workload,
    // strategy and seed produce the identical run whether evaluations fan
    // out over 1 thread or 8 — construction feeding batches feeding the
    // virtual clock, with the sharded cache in the middle.
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let model = performance_model_for("Dedispersion", &space, 7);
    let budget = Duration::from_secs(15);
    for strategy in [
        Box::new(RandomSampling) as Box<dyn Strategy>,
        Box::new(GeneticAlgorithm::default()),
        Box::new(HillClimbing::default()),
    ] {
        let serial = tune_with_options(
            &space,
            &model,
            strategy.as_ref(),
            budget,
            Duration::ZERO,
            21,
            EvalOptions::with_threads(1),
        );
        let parallel = tune_with_options(
            &space,
            &model,
            strategy.as_ref(),
            budget,
            Duration::ZERO,
            21,
            EvalOptions::with_threads(8),
        );
        assert_eq!(
            serial.evaluations, parallel.evaluations,
            "{}",
            serial.strategy
        );
        assert_eq!(serial.total_ms, parallel.total_ms, "{}", serial.strategy);
        assert_eq!(
            serial.metrics.cache_hits, parallel.metrics.cache_hits,
            "{}",
            serial.strategy
        );
    }
}

#[test]
fn tuning_runs_are_reproducible_per_seed() {
    let (space, _) = build_search_space(&dedispersion().spec, Method::Optimized).unwrap();
    let model = performance_model_for("Dedispersion", &space, 1);
    let a = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        42,
    );
    let b = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        42,
    );
    let c = tune(
        &space,
        &model,
        &RandomSampling,
        Duration::from_secs(10),
        Duration::ZERO,
        43,
    );
    assert_eq!(a.evaluations, b.evaluations);
    assert_ne!(
        a.evaluations.first().map(|e| e.config_index),
        c.evaluations.first().map(|e| e.config_index)
    );
}
