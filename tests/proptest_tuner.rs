//! Property-based tests for the batched evaluation pipeline.
//!
//! Three properties, over randomly drawn strategies, seeds, budgets and
//! thread counts:
//!
//! 1. **Thread-count invariance**: a batched tuning run is identical —
//!    same evaluations in the same order, same virtual clock, same work
//!    counters — whether the fan-out uses 1 thread or many. Parallelism
//!    may only change wall-clock time, never the result.
//! 2. **Cache correctness**: re-proposing an already-measured
//!    configuration returns the bitwise-identical runtime and charges
//!    exactly the cache-hit overhead, never the measurement cost again.
//! 3. **Rejection accounting**: out-of-space proposals are rejected,
//!    counted, and charge nothing — they can never consume budget or
//!    produce evaluations.

use proptest::prelude::*;
use std::time::Duration;

use autotuning_searchspaces::prelude::*;
use autotuning_searchspaces::tuner::{
    all_strategy_names, strategy_by_name, EvalOutcome, ModelBackend, TuningContext,
    CACHE_HIT_COST_MS,
};

/// A small but non-trivial space (the shape of the paper's workloads in
/// miniature): two pow2 dims with a coupled product bound plus a tile
/// parameter, so neighbor rings, crossover and snapping all have work to do.
fn small_space() -> SearchSpace {
    let spec = SearchSpaceSpec::new("proptest-tuner")
        .with_param(TunableParameter::pow2("block_size_x", 8))
        .with_param(TunableParameter::pow2("block_size_y", 6))
        .with_param(TunableParameter::ints("tile", [1, 2, 4, 8]))
        .with_expr("32 <= block_size_x*block_size_y <= 1024")
        .with_expr("tile <= block_size_y");
    build_search_space(&spec, Method::Optimized).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_strategy_is_thread_count_invariant(
        strategy_idx in 0usize..7,
        seed in 0u64..10_000,
        budget_ms in 300u64..3000,
        threads in 2usize..9,
    ) {
        let space = small_space();
        let model = SyntheticKernel::for_space(&space, seed ^ 0xA5A5);
        let name = all_strategy_names()[strategy_idx];
        let strategy = strategy_by_name(name).unwrap();
        let budget = Duration::from_millis(budget_ms);
        let serial = tune_with_options(
            &space,
            &model,
            strategy.as_ref(),
            budget,
            Duration::ZERO,
            seed,
            EvalOptions::with_threads(1),
        );
        let parallel = tune_with_options(
            &space,
            &model,
            strategy.as_ref(),
            budget,
            Duration::ZERO,
            seed,
            EvalOptions::with_threads(threads),
        );
        prop_assert_eq!(&serial.evaluations, &parallel.evaluations, "{}", name);
        prop_assert_eq!(serial.total_ms, parallel.total_ms, "{}", name);
        prop_assert_eq!(serial.best_runtime_ms(), parallel.best_runtime_ms(), "{}", name);
        // All work counters are thread-count-invariant; only the fan-out
        // bookkeeping (fanout_batches / fanout_thread_slots / threads) may
        // legitimately differ.
        prop_assert_eq!(serial.metrics.batches, parallel.metrics.batches, "{}", name);
        prop_assert_eq!(serial.metrics.proposed, parallel.metrics.proposed, "{}", name);
        prop_assert_eq!(serial.metrics.measured, parallel.metrics.measured, "{}", name);
        prop_assert_eq!(serial.metrics.cache_hits, parallel.metrics.cache_hits, "{}", name);
        prop_assert_eq!(serial.metrics.deduped, parallel.metrics.deduped, "{}", name);
        prop_assert_eq!(serial.metrics.rejected, parallel.metrics.rejected, "{}", name);
        prop_assert_eq!(serial.metrics.out_of_budget, parallel.metrics.out_of_budget, "{}", name);
        prop_assert_eq!(serial.metrics.largest_batch, parallel.metrics.largest_batch, "{}", name);
    }

    #[test]
    fn cache_hits_are_bitwise_identical_and_never_recharge_the_budget(
        seed in 0u64..10_000,
        raw_index in 0usize..10_000,
        threads in 1usize..9,
    ) {
        let space = small_space();
        let model = SyntheticKernel::for_space(&space, seed);
        let backend = ModelBackend::new(&model);
        let mut ctx = TuningContext::new(
            &space,
            &backend,
            Duration::from_secs(600),
            Duration::ZERO,
            seed,
            EvalOptions::with_threads(threads),
        );
        let id = ConfigId::from_index(raw_index % space.len());
        let first = ctx.evaluate_one(id);
        let runtime = first.runtime().unwrap();
        prop_assert!(matches!(first, EvalOutcome::Measured(_)));
        let remaining = ctx.remaining_ms();
        // Re-proposing the same id — alone and inside a larger batch — must
        // serve the cache: bitwise-identical runtime, only the hit overhead.
        let hit = ctx.evaluate_one(id);
        prop_assert_eq!(hit, EvalOutcome::Cached(runtime));
        prop_assert_eq!(ctx.remaining_ms(), remaining - CACHE_HIT_COST_MS);
        let batch = ctx.evaluate_batch(&[id, id]);
        prop_assert_eq!(batch[0], EvalOutcome::Cached(runtime));
        prop_assert_eq!(batch[1], EvalOutcome::Cached(runtime));
        prop_assert_eq!(ctx.remaining_ms(), remaining - 3.0 * CACHE_HIT_COST_MS);
        let run = ctx.finish("proptest", Duration::ZERO);
        prop_assert_eq!(run.num_evaluations(), 1);
        prop_assert_eq!(run.metrics.measured, 1);
        prop_assert_eq!(run.metrics.cache_hits + run.metrics.deduped, 3);
    }

    #[test]
    fn out_of_space_proposals_charge_nothing_and_are_counted(
        seed in 0u64..10_000,
        offset in 0usize..1000,
        threads in 1usize..9,
    ) {
        let space = small_space();
        let model = SyntheticKernel::for_space(&space, seed);
        let backend = ModelBackend::new(&model);
        let mut ctx = TuningContext::new(
            &space,
            &backend,
            Duration::from_secs(600),
            Duration::ZERO,
            seed,
            EvalOptions::with_threads(threads),
        );
        let bogus = ConfigId::from_index(space.len() + offset);
        let good = ConfigId::from_index(seed as usize % space.len());
        let before = ctx.remaining_ms();
        prop_assert_eq!(ctx.evaluate_one(bogus), EvalOutcome::Rejected);
        prop_assert_eq!(ctx.remaining_ms(), before);
        let out = ctx.evaluate_batch(&[bogus, good, bogus]);
        prop_assert_eq!(out[0], EvalOutcome::Rejected);
        prop_assert!(matches!(out[1], EvalOutcome::Measured(_)));
        prop_assert_eq!(out[2], EvalOutcome::Rejected);
        let run = ctx.finish("proptest", Duration::ZERO);
        prop_assert_eq!(run.metrics.rejected, 3);
        prop_assert_eq!(run.num_evaluations(), 1);
    }
}
