//! Property-based and corruption tests of the `at_store` persistence layer:
//! for arbitrary generated spaces, save → load must round-trip
//! code-for-code identical (arena, dictionaries, name, `index_of`
//! behavior); damaged files (truncation, flipped bytes, wrong version) must
//! produce a clean `StoreError`; and the content-addressed cache must fall
//! back to a rebuild instead of ever serving a damaged entry.

use proptest::prelude::*;

use autotuning_searchspaces::csp::Value;
use autotuning_searchspaces::searchspace::{
    build_search_space, Method, SearchSpace, SearchSpaceSpec, TunableParameter,
};
use autotuning_searchspaces::store::{
    read_space_from_bytes, read_space_from_path, write_space, write_space_to_path, CacheStatus,
    SpaceStore, StoreError, StoreWriter, FORMAT_VERSION,
};

/// A randomly generated space description: per-parameter domains (integers,
/// floats or strings) and a pseudo-random subset of the Cartesian product
/// kept as "valid".
#[derive(Debug, Clone)]
struct RandomSpace {
    domains: Vec<Vec<Value>>,
    keep_seed: u64,
    keep_percent: u64,
}

fn domain() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        proptest::collection::vec((-50i64..50).prop_map(Value::Int), 1..6),
        proptest::collection::vec((1i64..40).prop_map(|i| Value::Float(i as f64 / 4.0)), 1..5),
        proptest::collection::vec((0i64..26).prop_map(|i| Value::str(format!("v{i}"))), 1..4),
    ]
}

fn random_space() -> impl Strategy<Value = RandomSpace> {
    (
        proptest::collection::vec(domain(), 1..5),
        0u64..u64::MAX,
        5u64..100,
    )
        .prop_map(|(domains, keep_seed, keep_percent)| RandomSpace {
            domains,
            keep_seed,
            keep_percent,
        })
}

/// Deterministic pseudo-random keep decision (splitmix-style hash).
fn keep(seed: u64, row_index: u64, percent: u64) -> bool {
    let mut z = seed ^ row_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 100 < percent
}

/// Build the parameters and the kept subset of the Cartesian product.
fn materialize(space: &RandomSpace) -> (Vec<TunableParameter>, Vec<Vec<Value>>) {
    let params: Vec<TunableParameter> = space
        .domains
        .iter()
        .enumerate()
        .map(|(i, d)| TunableParameter::new(format!("p{i}"), d.clone()))
        .collect();
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for p in &params {
        rows = rows
            .into_iter()
            .flat_map(|row| {
                p.values().iter().map(move |v| {
                    let mut next = row.clone();
                    next.push(v.clone());
                    next
                })
            })
            .collect();
    }
    let rows = rows
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep(space.keep_seed, *i as u64, space.keep_percent))
        .map(|(_, row)| row)
        .collect();
    (params, rows)
}

/// The full identity contract: same name, same dictionaries, same arena,
/// same `index_of`/`contains` behavior for member and non-member rows.
fn assert_spaces_identical(original: &SearchSpace, loaded: &SearchSpace) {
    assert_eq!(original.name(), loaded.name());
    assert_eq!(original.len(), loaded.len());
    assert_eq!(original.num_params(), loaded.num_params());
    assert_eq!(original.arena(), loaded.arena());
    for (a, b) in original.params().iter().zip(loaded.params()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.values(), b.values());
    }
    for view in original.iter() {
        let row = view.to_vec();
        assert_eq!(loaded.index_of(&row), Some(view.id()));
        assert!(loaded.contains(&row));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_round_trips_code_for_code(desc in random_space()) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("roundtrip", params, rows).unwrap();
        let mut bytes = Vec::new();
        let summary = write_space(&space, &mut bytes).unwrap();
        prop_assert_eq!(summary.rows as usize, space.len());
        prop_assert_eq!(summary.bytes_written as usize, bytes.len());
        let (loaded, info) = read_space_from_bytes(&bytes).unwrap();
        prop_assert_eq!(info.version, FORMAT_VERSION);
        prop_assert!(info.index.is_some(), "v2 files persist the membership table");
        prop_assert_eq!(info.num_rows, space.len());
        assert_spaces_identical(&space, &loaded);
        // Rows outside the space stay outside after a round trip.
        if let Some(first) = space.params().first() {
            let mut foreign = space.iter().next().map(|v| v.to_vec());
            if let Some(row) = foreign.as_mut() {
                // A value from the dictionary that may form an absent row, or
                // at minimum: identical membership answers on both spaces.
                row[0] = first.values().last().unwrap().clone();
                prop_assert_eq!(space.index_of(row), loaded.index_of(row));
            }
        }
    }

    #[test]
    fn truncation_always_errors_cleanly(desc in random_space(), cut in 0.0f64..1.0) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("truncated", params, rows).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let keep_bytes = ((bytes.len() - 1) as f64 * cut) as usize;
        let result = read_space_from_bytes(&bytes[..keep_bytes]);
        prop_assert!(result.is_err(), "truncation to {keep_bytes}/{} bytes slipped through", bytes.len());
    }

    #[test]
    fn byte_flips_always_error_cleanly(desc in random_space(), pos in 0.0f64..1.0, mask in 1u8..255) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("flipped", params, rows).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let at = ((bytes.len() - 1) as f64 * pos) as usize;
        bytes[at] ^= mask;
        let result = read_space_from_bytes(&bytes);
        prop_assert!(result.is_err(), "flip of byte {at} (mask {mask:#04x}) slipped through");
    }
}

fn small_spec(name: &str) -> SearchSpaceSpec {
    SearchSpaceSpec::new(name)
        .with_param(TunableParameter::pow2("block_size_x", 6))
        .with_param(TunableParameter::pow2("block_size_y", 5))
        .with_param(TunableParameter::ints("work_per_thread", [1, 2, 4]))
        .with_expr("32 <= block_size_x * block_size_y <= 256")
        .with_expr("work_per_thread <= block_size_y")
}

fn fresh_store(tag: &str) -> SpaceStore {
    let dir = std::env::temp_dir().join(format!("at-store-roundtrip-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    SpaceStore::new(&dir).unwrap()
}

#[test]
fn constructed_and_loaded_spaces_are_identical_for_every_method() {
    let spec = small_spec("methods");
    let dir = std::env::temp_dir().join("at-store-roundtrip-methods-files");
    std::fs::create_dir_all(&dir).unwrap();
    for method in Method::all() {
        let (space, _) = build_search_space(&spec, method).unwrap();
        let path = dir.join(format!("{}.atss", method.label()));
        write_space_to_path(&space, &path).unwrap();
        let (loaded, _) = read_space_from_path(&path).unwrap();
        assert_spaces_identical(&space, &loaded);
    }
}

#[test]
fn streaming_store_writer_persists_while_constructing() {
    use autotuning_searchspaces::searchspace::{solve_spec_into, BuildOptions};

    let spec = small_spec("streamed");
    let dir = std::env::temp_dir().join("at-store-roundtrip-streamed");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("streamed.atss");

    let file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    let mut writer = StoreWriter::new(file, spec.name.clone(), spec.params.clone()).unwrap();
    solve_spec_into(
        &spec,
        Method::Optimized,
        BuildOptions::default(),
        &mut writer,
    )
    .unwrap();
    let (built, summary) = writer.finish().unwrap();
    assert_eq!(summary.rows as usize, built.len());

    let (loaded, info) = read_space_from_path(&path).unwrap();
    assert_eq!(info.file_bytes, summary.bytes_written);
    assert_spaces_identical(&built, &loaded);

    // The parallel solver goes through the chunked sink path.
    let path = dir.join("streamed-parallel.atss");
    let file = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    let mut writer = StoreWriter::new(file, spec.name.clone(), spec.params.clone()).unwrap();
    solve_spec_into(
        &spec,
        Method::ParallelOptimized,
        BuildOptions::default(),
        &mut writer,
    )
    .unwrap();
    let (built, _) = writer.finish().unwrap();
    let (loaded, _) = read_space_from_path(&path).unwrap();
    assert_spaces_identical(&built, &loaded);
}

#[test]
fn wrong_version_is_a_clean_store_error() {
    let spec = small_spec("version");
    let (space, _) = build_search_space(&spec, Method::Optimized).unwrap();
    let mut bytes = Vec::new();
    write_space(&space, &mut bytes).unwrap();
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match read_space_from_bytes(&bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn cache_falls_back_to_rebuild_on_any_damage() {
    let store = fresh_store("fallback");
    let spec = small_spec("fallback");
    let (original, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
    assert_eq!(outcome.status, CacheStatus::Miss);
    let path = outcome.path.unwrap();

    // Wrong version, flipped byte, truncation: each must rebuild, repair
    // the entry, and serve an identical space.
    let pristine = std::fs::read(&path).unwrap();
    let mut wrong_version = pristine.clone();
    wrong_version[4..8].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    let mut flipped = pristine.clone();
    let mid = pristine.len() / 2;
    flipped[mid] ^= 0x10;
    let damaged_variants = [
        wrong_version,
        flipped,
        pristine[..pristine.len() / 3].to_vec(),
        b"ATSS".to_vec(),
        Vec::new(),
    ];
    for damage in damaged_variants {
        std::fs::write(&path, &damage).unwrap();
        let (rebuilt, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert_eq!(outcome.status, CacheStatus::Miss, "damage must not hit");
        assert_spaces_identical(&original, &rebuilt);
        let (served, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
        assert!(outcome.status.is_hit(), "rebuild must repair the entry");
        assert_spaces_identical(&original, &served);
    }
}

#[test]
fn warm_hit_equals_cold_build_on_real_workloads() {
    use autotuning_searchspaces::workloads::dedispersion;

    let store = fresh_store("dedispersion");
    let spec = dedispersion().spec;
    let (cold, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
    assert_eq!(outcome.status, CacheStatus::Miss);
    let (warm, outcome) = store.get_or_build(&spec, Method::Optimized).unwrap();
    assert!(outcome.status.is_hit());
    assert!(outcome.report.is_none(), "a hit performs no solving");
    assert_spaces_identical(&cold, &warm);
}
