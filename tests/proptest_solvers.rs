//! Property-based tests: on randomly generated small constraint problems,
//! every solver and the chain-of-trees construction must agree with brute
//! force, and decomposed expression lowering must not change the space.

use proptest::prelude::*;

use autotuning_searchspaces::cot::{build_chain_from_problem, enumerate_chain};
use autotuning_searchspaces::csp::prelude::*;
use autotuning_searchspaces::csp::sink::CountingSink;
use autotuning_searchspaces::csp::solver_by_name;
use autotuning_searchspaces::csp::value::int_values;

/// A randomly generated small problem description.
#[derive(Debug, Clone)]
struct RandomProblem {
    domains: Vec<Vec<i64>>,
    max_products: Vec<(usize, usize, i64)>,
    min_sums: Vec<(usize, usize, i64)>,
    parity: Option<(usize, i64)>,
}

fn random_problem() -> impl Strategy<Value = RandomProblem> {
    let domain = proptest::collection::vec(1i64..20, 1..6);
    let domains = proptest::collection::vec(domain, 2..5);
    domains.prop_flat_map(|domains| {
        let n = domains.len();
        let max_products = proptest::collection::vec((0..n, 0..n, 1i64..200), 0..3).prop_map(|v| v);
        let min_sums = proptest::collection::vec((0..n, 0..n, 1i64..30), 0..2);
        let parity = proptest::option::of((0..n, 2i64..4));
        (Just(domains), max_products, min_sums, parity).prop_map(
            |(domains, max_products, min_sums, parity)| RandomProblem {
                domains,
                max_products,
                min_sums,
                parity,
            },
        )
    })
}

fn build(problem: &RandomProblem) -> Problem {
    let mut p = Problem::new();
    for (i, d) in problem.domains.iter().enumerate() {
        // deduplicate values to keep the Cartesian size honest
        let mut values = d.clone();
        values.sort_unstable();
        values.dedup();
        p.add_variable(format!("v{i}"), int_values(values)).unwrap();
    }
    for &(a, b, limit) in &problem.max_products {
        let names = [format!("v{a}"), format!("v{b}")];
        let scope: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        p.add_constraint(MaxProduct::new(limit as f64), &scope)
            .unwrap();
    }
    for &(a, b, minimum) in &problem.min_sums {
        let names = [format!("v{a}"), format!("v{b}")];
        let scope: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        p.add_constraint(MinSum::new(minimum as f64), &scope)
            .unwrap();
    }
    if let Some((var, modulus)) = problem.parity {
        let name = format!("v{var}");
        p.add_function_constraint(&[&name], move |vals| {
            vals[0].as_i64().unwrap() % modulus == 0
        })
        .unwrap();
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_solver_matches_brute_force(rp in random_problem()) {
        let problem = build(&rp);
        let brute = BruteForceSolver::new().solve(&problem).unwrap();
        let optimized = OptimizedSolver::new().solve(&problem).unwrap();
        prop_assert!(brute.solutions.same_solutions(&optimized.solutions));
    }

    #[test]
    fn parallel_solver_matches_brute_force(rp in random_problem()) {
        let problem = build(&rp);
        let brute = BruteForceSolver::new().solve(&problem).unwrap();
        let parallel = ParallelSolver::new().solve(&problem).unwrap();
        prop_assert!(brute.solutions.same_solutions(&parallel.solutions));
    }

    #[test]
    fn chain_of_trees_matches_brute_force(rp in random_problem()) {
        let problem = build(&rp);
        let brute = BruteForceSolver::new().solve(&problem).unwrap();
        let chain = build_chain_from_problem(&problem);
        let from_chain = enumerate_chain(&chain);
        prop_assert_eq!(chain.size(), brute.solutions.len() as u128);
        prop_assert!(brute.solutions.same_solutions(&from_chain));
    }

    #[test]
    fn every_solver_reports_stats_matching_its_solution_count(rp in random_problem()) {
        // `stats.solutions` must equal the number of rows produced, on both
        // the collecting path and the streaming sink path, for all solvers.
        let problem = build(&rp);
        let mut counts: Vec<u64> = Vec::new();
        for name in ["brute-force", "original", "optimized", "parallel", "blocking-clause"] {
            let solver = solver_by_name(name).unwrap();
            let collected = solver.solve(&problem).unwrap();
            prop_assert_eq!(
                collected.stats.solutions as usize,
                collected.solutions.len(),
                "{}: collected stats disagree", name
            );
            let mut sink = CountingSink::default();
            let stats = solver.solve_into(&problem, &mut sink).unwrap();
            prop_assert_eq!(stats.solutions, sink.rows(), "{}: streamed stats disagree", name);
            prop_assert_eq!(
                stats.solutions as usize,
                collected.solutions.len(),
                "{}: streaming found a different number of solutions", name
            );
            counts.push(stats.solutions);
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "solvers disagree: {:?}", counts);
    }

    #[test]
    fn solver_config_variants_match_brute_force(rp in random_problem()) {
        let problem = build(&rp);
        let brute = BruteForceSolver::new().solve(&problem).unwrap();
        for forward_check in [false, true] {
            let cfg = OptimizedSolverConfig {
                variable_ordering: !forward_check,
                preprocess: forward_check,
                forward_check,
                arc_consistency: forward_check,
            };
            let result = OptimizedSolver::with_config(cfg).solve(&problem).unwrap();
            prop_assert!(brute.solutions.same_solutions(&result.solutions));
        }
    }
}
