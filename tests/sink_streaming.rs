//! Streaming-construction equivalence: for every construction method, the
//! sink path (solver → `EncodingSink` → arena) must produce a `SearchSpace`
//! identical — row for row, code for code — to the classic collect-then-
//! index path (`solve` → `SolutionSet` → `from_solutions`), and the solver
//! statistics must agree with the number of rows streamed.

use autotuning_searchspaces::cot::{
    build_chain_from_problem, enumerate_chain, enumerate_chain_into,
};
use autotuning_searchspaces::csp::sink::CountingSink;
use autotuning_searchspaces::csp::solver_by_name;
use autotuning_searchspaces::searchspace::{
    build_search_space, EncodingSink, Method, SearchSpace, SearchSpaceSpec,
};
use autotuning_searchspaces::workloads::{atf_prl, dedispersion};

const SOLVER_NAMES: [&str; 5] = [
    "brute-force",
    "original",
    "optimized",
    "parallel",
    "blocking-clause",
];

/// Assert two spaces hold the same configurations in the same order with
/// the same encoding (stronger than set equality).
fn assert_identical_spaces(a: &SearchSpace, b: &SearchSpace, context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: different sizes");
    assert_eq!(a.num_params(), b.num_params(), "{context}: different arity");
    for (va, vb) in a.iter().zip(b.iter()) {
        assert_eq!(va.codes(), vb.codes(), "{context}: row {} differs", va.id());
    }
}

fn workload_specs() -> Vec<SearchSpaceSpec> {
    vec![dedispersion().spec, atf_prl(2).spec]
}

#[test]
fn sink_construction_is_identical_to_from_solutions_for_every_solver() {
    for spec in workload_specs() {
        for name in SOLVER_NAMES {
            // Skip the quadratic blocking-clause enumerator on the real
            // workloads (it re-solves from scratch per solution); it is
            // covered on the small spec in
            // `solver_stats_match_streamed_counts_on_a_small_space`.
            if name == "blocking-clause" {
                continue;
            }
            let solver = solver_by_name(name).unwrap();
            let problem = spec.to_problem(Default::default()).unwrap();

            // classic path: collect a SolutionSet, then index it
            let collected = solver.solve(&problem).unwrap();
            let reference = SearchSpace::from_solutions(
                spec.name.clone(),
                spec.params.clone(),
                &collected.solutions,
            )
            .unwrap();

            // streaming path: encode rows as they are found
            let mut sink = EncodingSink::new(spec.name.clone(), spec.params.clone()).unwrap();
            let stats = solver.solve_into(&problem, &mut sink).unwrap();
            assert_eq!(
                stats.solutions as usize,
                sink.rows(),
                "{}/{name}: stats disagree with streamed rows",
                spec.name
            );
            let streamed = sink.finish().unwrap();
            assert_identical_spaces(&streamed, &reference, &format!("{}/{name}", spec.name));
        }
    }
}

#[test]
fn sink_construction_is_identical_for_the_chain_of_trees() {
    for spec in workload_specs() {
        let problem = spec.to_problem(Default::default()).unwrap();
        let chain = build_chain_from_problem(&problem);

        let collected = enumerate_chain(&chain);
        let reference =
            SearchSpace::from_solutions(spec.name.clone(), spec.params.clone(), &collected)
                .unwrap();

        let mut sink = EncodingSink::new(spec.name.clone(), spec.params.clone()).unwrap();
        enumerate_chain_into(&chain, &mut sink).unwrap();
        assert_eq!(sink.rows(), collected.len());
        let streamed = sink.finish().unwrap();
        assert_identical_spaces(&streamed, &reference, &format!("{}/chain", spec.name));
    }
}

#[test]
fn build_search_space_agrees_with_the_collected_reference_on_all_methods() {
    for spec in workload_specs() {
        let reference = {
            let problem = spec.to_problem(Default::default()).unwrap();
            let collected = solver_by_name("brute-force")
                .unwrap()
                .solve(&problem)
                .unwrap();
            SearchSpace::from_solutions(
                spec.name.clone(),
                spec.params.clone(),
                &collected.solutions,
            )
            .unwrap()
        };
        for method in [
            Method::BruteForce,
            Method::Original,
            Method::Optimized,
            Method::ParallelOptimized,
            Method::ChainOfTrees,
        ] {
            let (space, report) = build_search_space(&spec, method).unwrap();
            assert_eq!(report.num_valid, space.len());
            assert_eq!(
                space.len(),
                reference.len(),
                "{}/{}",
                spec.name,
                method.label()
            );
            // methods enumerate in different orders, so compare as sets
            // through the membership index
            for view in reference.iter() {
                assert!(
                    space
                        .index_of_codes(&space.encode(&view.to_vec()).unwrap())
                        .is_some(),
                    "{}/{} misses {:?}",
                    spec.name,
                    method.label(),
                    view
                );
            }
        }
    }
}

#[test]
fn solver_stats_match_streamed_counts_on_a_small_space() {
    let spec = SearchSpaceSpec::new("small")
        .with_param(autotuning_searchspaces::searchspace::TunableParameter::ints("x", 1..=6))
        .with_param(autotuning_searchspaces::searchspace::TunableParameter::ints("y", 1..=6))
        .with_expr("x * y <= 12");
    let problem = spec.to_problem(Default::default()).unwrap();
    let mut expected: Option<u64> = None;
    for name in SOLVER_NAMES {
        let solver = solver_by_name(name).unwrap();
        let collected = solver.solve(&problem).unwrap();
        assert_eq!(
            collected.stats.solutions as usize,
            collected.solutions.len(),
            "{name}: collected stats disagree"
        );
        let mut count = CountingSink::default();
        let stats = solver.solve_into(&problem, &mut count).unwrap();
        assert_eq!(
            stats.solutions,
            count.rows(),
            "{name}: streamed stats disagree"
        );
        match expected {
            None => expected = Some(stats.solutions),
            Some(e) => assert_eq!(stats.solutions, e, "{name}: solver disagrees on count"),
        }
    }
}

#[test]
fn from_code_rows_adopts_prebuilt_chunks() {
    use autotuning_searchspaces::searchspace::TunableParameter;
    let params = vec![
        TunableParameter::ints("x", [1, 2, 4]),
        TunableParameter::ints("y", [1, 2]),
    ];
    // two pre-encoded chunks, concatenated without re-hashing
    let mut arena: Vec<u32> = vec![0, 0, 1, 1]; // (1,1), (2,2)
    arena.extend_from_slice(&[2, 0]); // (4,1)
    let space = SearchSpace::from_code_rows("adopted", params.clone(), 3, arena).unwrap();
    assert_eq!(space.len(), 3);
    use autotuning_searchspaces::csp::value::int_values;
    assert!(space.contains(&int_values([4, 1])));
    assert!(space.contains(&int_values([2, 2])));
    assert!(!space.contains(&int_values([4, 2])));

    // out-of-range codes and ragged arenas are rejected
    assert!(SearchSpace::from_code_rows("bad", params.clone(), 1, vec![3, 0]).is_err());
    assert!(SearchSpace::from_code_rows("bad", params, 2, vec![0, 0, 1]).is_err());
}
