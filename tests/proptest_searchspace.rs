//! Property-based tests of the index-encoded `SearchSpace` core: for
//! arbitrary small specifications, encode/decode round-trips, `iter_decoded`,
//! `ConfigView` and `index_of`/`index_of_codes` must all agree with the
//! plain row semantics of the old `Vec<Vec<Value>>` representation, and
//! construction must reject rows containing out-of-domain values.

use proptest::prelude::*;

use autotuning_searchspaces::csp::Value;
use autotuning_searchspaces::searchspace::{ConfigId, SearchSpace, SpaceError, TunableParameter};

/// A randomly generated space description: per-parameter integer domains and
/// a pseudo-random subset of the Cartesian product to keep as "valid".
#[derive(Debug, Clone)]
struct RandomSpace {
    domains: Vec<Vec<i64>>,
    keep_seed: u64,
    keep_percent: u64,
}

fn random_space() -> impl Strategy<Value = RandomSpace> {
    let domain = proptest::collection::vec(1i64..50, 1..6);
    let domains = proptest::collection::vec(domain, 1..5);
    (domains, 0u64..u64::MAX, 10u64..100).prop_map(|(domains, keep_seed, keep_percent)| {
        RandomSpace {
            domains,
            keep_seed,
            keep_percent,
        }
    })
}

/// Deterministic pseudo-random keep decision (splitmix-style hash).
fn keep(seed: u64, row_index: u64, percent: u64) -> bool {
    let mut z = seed ^ row_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 100 < percent
}

/// Build the parameters (deduplicated domains, like `TunableParameter::new`)
/// and the kept subset of the Cartesian product in row-major order.
fn materialize(space: &RandomSpace) -> (Vec<TunableParameter>, Vec<Vec<Value>>) {
    let params: Vec<TunableParameter> = space
        .domains
        .iter()
        .enumerate()
        .map(|(i, d)| TunableParameter::ints(format!("p{i}"), d.clone()))
        .collect();
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for p in &params {
        rows = rows
            .into_iter()
            .flat_map(|row| {
                p.values().iter().map(move |v| {
                    let mut next = row.clone();
                    next.push(v.clone());
                    next
                })
            })
            .collect();
    }
    let rows = rows
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep(space.keep_seed, *i as u64, space.keep_percent))
        .map(|(_, row)| row)
        .collect();
    (params, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_and_lookup_agree_with_row_semantics(desc in random_space()) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("prop", params.clone(), rows.clone()).unwrap();
        prop_assert_eq!(space.len(), rows.len());

        // iter_decoded reproduces the input rows in order.
        let decoded: Vec<Vec<Value>> = space.iter_decoded().collect();
        prop_assert_eq!(&decoded, &rows);

        for (i, row) in rows.iter().enumerate() {
            let id = ConfigId::from_index(i);
            let view = space.view(id).unwrap();
            // ConfigView agrees with the row cell by cell.
            prop_assert_eq!(view.len(), row.len());
            for (d, expected) in row.iter().enumerate() {
                prop_assert_eq!(view.value(d), Some(expected));
            }
            prop_assert_eq!(view.to_vec(), row.clone());
            // The codes round-trip through encode and the hash index.
            let codes = space.encode(row).unwrap();
            prop_assert_eq!(codes.as_slice(), view.codes());
            prop_assert_eq!(space.index_of(row), Some(id));
            prop_assert_eq!(space.index_of_codes(&codes), Some(id));
            // Codes point at the right dictionary entries.
            for (d, &code) in codes.iter().enumerate() {
                prop_assert_eq!(&params[d].values()[code as usize], &row[d]);
            }
        }
    }

    #[test]
    fn rows_outside_the_space_are_rejected_or_absent(desc in random_space()) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("prop", params.clone(), rows.clone()).unwrap();

        // A value outside every domain is never contained and cannot encode.
        let foreign: Vec<Value> = params.iter().map(|_| Value::Int(999)).collect();
        prop_assert!(!space.contains(&foreign));
        prop_assert_eq!(space.encode(&foreign), None);

        // Construction with a foreign value errors instead of corrupting.
        let mut bad_rows = rows;
        bad_rows.push(foreign);
        let err = SearchSpace::from_configs("bad", params, bad_rows).unwrap_err();
        prop_assert!(matches!(err, SpaceError::UnknownValue { .. }));
    }

    #[test]
    fn filter_preserves_ids_densely(desc in random_space()) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("prop", params, rows).unwrap();
        // Keep every other configuration.
        let filtered = space.filter(|view| view.id().index() % 2 == 0);
        prop_assert_eq!(filtered.len(), space.len().div_ceil(2));
        for (new_index, view) in filtered.iter().enumerate() {
            let original = space.view(ConfigId::from_index(new_index * 2)).unwrap();
            prop_assert_eq!(view.to_vec(), original.to_vec());
            prop_assert_eq!(filtered.index_of(&view.to_vec()), Some(view.id()));
        }
    }
}
