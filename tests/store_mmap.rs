//! Zero-copy load equivalence and `IDX`-section corruption coverage.
//!
//! The v2 `ATSS` contract under test:
//!
//! * an mmap-loaded space is code-for-code and `index_of`-identical to an
//!   owned (copying) load and to the cold build — for arbitrary generated
//!   spaces and the real workloads;
//! * damage to the persisted membership table (byte flips, truncation) is
//!   never served: the load either fails cleanly or falls back to a
//!   *reported* index rebuild, and every lookup stays correct;
//! * v1 files (the checked-in fixture) remain readable via the copying
//!   path, including under `LoadOptions::mmap_trusted()` (reported
//!   fallback).

use proptest::prelude::*;

use autotuning_searchspaces::csp::Value;
use autotuning_searchspaces::searchspace::{
    build_search_space, Method, SearchSpace, TunableParameter,
};
use autotuning_searchspaces::store::{
    load_space_from_path, read_space_from_path, write_space, write_space_to_path, IndexPolicy,
    LoadMode, LoadOptions, StoreReader, FORMAT_VERSION, MIN_READ_VERSION,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("at-store-mmap-{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The full identity contract between two loads of the same space.
fn assert_spaces_identical(original: &SearchSpace, loaded: &SearchSpace) {
    assert_eq!(original.name(), loaded.name());
    assert_eq!(original.len(), loaded.len());
    assert_eq!(original.num_params(), loaded.num_params());
    assert_eq!(original.arena(), loaded.arena());
    for (a, b) in original.params().iter().zip(loaded.params()) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.values(), b.values());
    }
    for view in original.iter() {
        let row = view.to_vec();
        assert_eq!(loaded.index_of(&row), Some(view.id()));
        assert!(loaded.contains(&row));
    }
}

/// Every load-option combination must serve the same space.
fn assert_all_load_paths_identical(reference: &SearchSpace, path: &std::path::Path) {
    let reader = StoreReader::open(path).unwrap();
    for mode in [LoadMode::Copy, LoadMode::Mmap] {
        for index in [
            IndexPolicy::Rebuild,
            IndexPolicy::TrustPersisted,
            IndexPolicy::VerifySampled,
        ] {
            let loaded = reader.load(LoadOptions { mode, index }).unwrap();
            assert!(
                loaded.report.index_fallback().is_none(),
                "pristine file must not fall back: {:?}",
                loaded.report
            );
            if mode == LoadMode::Mmap && cfg!(target_os = "linux") {
                assert!(loaded.report.is_zero_copy());
                assert!(loaded.space.is_zero_copy());
            }
            assert_spaces_identical(reference, &loaded.space);
        }
    }
}

/// A randomly generated space: per-parameter domains and a pseudo-random
/// subset of the Cartesian product kept as "valid".
#[derive(Debug, Clone)]
struct RandomSpace {
    domains: Vec<Vec<Value>>,
    keep_seed: u64,
    keep_percent: u64,
}

fn domain() -> impl Strategy<Value = Vec<Value>> {
    prop_oneof![
        proptest::collection::vec((-50i64..50).prop_map(Value::Int), 1..6),
        proptest::collection::vec((1i64..40).prop_map(|i| Value::Float(i as f64 / 4.0)), 1..5),
        proptest::collection::vec((0i64..26).prop_map(|i| Value::str(format!("v{i}"))), 1..4),
    ]
}

fn random_space() -> impl Strategy<Value = RandomSpace> {
    (
        proptest::collection::vec(domain(), 1..5),
        0u64..u64::MAX,
        5u64..100,
    )
        .prop_map(|(domains, keep_seed, keep_percent)| RandomSpace {
            domains,
            keep_seed,
            keep_percent,
        })
}

fn keep(seed: u64, row_index: u64, percent: u64) -> bool {
    let mut z = seed ^ row_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) % 100 < percent
}

fn materialize(space: &RandomSpace) -> (Vec<TunableParameter>, Vec<Vec<Value>>) {
    let params: Vec<TunableParameter> = space
        .domains
        .iter()
        .enumerate()
        .map(|(i, d)| TunableParameter::new(format!("p{i}"), d.clone()))
        .collect();
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for p in &params {
        rows = rows
            .into_iter()
            .flat_map(|row| {
                p.values().iter().map(move |v| {
                    let mut next = row.clone();
                    next.push(v.clone());
                    next
                })
            })
            .collect();
    }
    let rows = rows
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep(space.keep_seed, *i as u64, space.keep_percent))
        .map(|(_, row)| row)
        .collect();
    (params, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mmap_and_copy_loads_are_identical_for_arbitrary_spaces(desc in random_space()) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("zc", params, rows).unwrap();
        let path = temp_dir("prop").join("space.atss");
        write_space_to_path(&space, &path).unwrap();
        assert_all_load_paths_identical(&space, &path);
    }

    /// Any damage to the region after the arena (the IDX section) must
    /// yield either a clean error or a correct space with a *reported*
    /// index rebuild — never a wrong lookup.
    #[test]
    fn damaged_index_sections_never_produce_wrong_lookups(
        desc in random_space(),
        pos in 0.0f64..1.0,
        mask in 1u8..255,
    ) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("dmg", params, rows).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        // The IDX section spans from arena end to the trailer. Recompute
        // its range from the written layout: everything between the end of
        // the (empty-or-not) arena and the last 16 bytes.
        let trailer_at = bytes.len() - 16;
        let arena_bytes = space.len() * space.num_params() * 4;
        let idx_start = trailer_at - (4 + 8 + 8 + space.index_slots().len() * 4 + 4);
        prop_assert!(idx_start >= arena_bytes, "layout sanity");
        let at = idx_start + ((trailer_at - 1 - idx_start) as f64 * pos) as usize;
        bytes[at] ^= mask;

        let path = temp_dir("prop-dmg").join("damaged.atss");
        std::fs::write(&path, &bytes).unwrap();
        for options in [
            LoadOptions::default(),
            LoadOptions::mmap_trusted(),
            LoadOptions { mode: LoadMode::Mmap, index: IndexPolicy::VerifySampled },
        ] {
            match load_space_from_path(&path, options) {
                Ok(loaded) => {
                    // Damage to the index itself must have been detected
                    // and reported; either way every lookup is correct.
                    prop_assert!(
                        loaded.report.index_fallback().is_some(),
                        "flip at {at} adopted silently: {:?}",
                        loaded.report
                    );
                    assert_spaces_identical(&space, &loaded.space);
                }
                Err(e) => {
                    // Structural damage (e.g. the section frame): a clean
                    // content error, which the cache turns into a rebuild.
                    prop_assert!(e.is_content_error(), "unexpected error kind: {e}");
                }
            }
        }
    }

    #[test]
    fn truncated_files_never_load(desc in random_space(), cut in 0.0f64..1.0) {
        let (params, rows) = materialize(&desc);
        let space = SearchSpace::from_configs("trunc", params, rows).unwrap();
        let mut bytes = Vec::new();
        write_space(&space, &mut bytes).unwrap();
        let keep_bytes = ((bytes.len() - 1) as f64 * cut) as usize;
        let path = temp_dir("prop-trunc").join("truncated.atss");
        std::fs::write(&path, &bytes[..keep_bytes]).unwrap();
        for options in [LoadOptions::default(), LoadOptions::mmap_trusted()] {
            prop_assert!(
                load_space_from_path(&path, options).is_err(),
                "truncation to {keep_bytes}/{} bytes slipped through",
                bytes.len()
            );
        }
    }
}

#[test]
fn real_workloads_load_identically_through_every_path() {
    use autotuning_searchspaces::workloads::{atf_prl, dedispersion};

    for workload in [dedispersion(), atf_prl(2)] {
        let spec = workload.spec;
        let (cold, _) = build_search_space(&spec, Method::Optimized).unwrap();
        let path = temp_dir("real").join(format!("{}.atss", spec.name));
        write_space_to_path(&cold, &path).unwrap();
        assert_all_load_paths_identical(&cold, &path);
    }
}

#[test]
fn v1_fixture_still_loads_via_the_copying_path() {
    // `tests/fixtures/v1-small.atss` was written by the PR-4 (version 1)
    // writer and checked in; the spec below reproduces its content.
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1-small.atss");
    let (loaded, info) = read_space_from_path(&path).unwrap();
    assert_eq!(info.version, MIN_READ_VERSION);
    assert!(info.version < FORMAT_VERSION);
    assert!(
        info.index.is_none(),
        "v1 files have no persisted membership table"
    );
    assert_eq!(loaded.name(), "v1-fixture");
    assert_eq!(loaded.num_params(), 4);

    // Reconstruct the fixture's space in-process and compare.
    let params = vec![
        TunableParameter::ints("block_size_x", [1, 2, 4, 8, 16, 32]),
        TunableParameter::ints("block_size_y", [1, 2, 4, 8]),
        TunableParameter::new(
            "precision",
            vec![
                Value::str("half"),
                Value::str("single"),
                Value::str("double"),
            ],
        ),
        TunableParameter::new("scale", vec![Value::Float(0.5), Value::Float(1.0)]),
    ];
    let mut configs = Vec::new();
    for &x in &[1i64, 2, 4, 8, 16, 32] {
        for &y in &[1i64, 2, 4, 8] {
            if x * y > 32 {
                continue;
            }
            for p in ["half", "single", "double"] {
                for &s in &[0.5f64, 1.0] {
                    configs.push(vec![
                        Value::Int(x),
                        Value::Int(y),
                        Value::str(p),
                        Value::Float(s),
                    ]);
                }
            }
        }
    }
    let reference = SearchSpace::from_configs("v1-fixture", params, configs).unwrap();
    assert_spaces_identical(&reference, &loaded);

    // Requesting mmap on a v1 file falls back to the copying path (no
    // alignment rule in v1) — reported, not an error.
    let loaded = load_space_from_path(&path, LoadOptions::mmap_trusted()).unwrap();
    assert!(!loaded.report.is_zero_copy());
    assert!(!loaded.space.is_zero_copy());
    assert_spaces_identical(&reference, &loaded.space);
}

#[test]
fn rewriting_the_v1_fixture_upgrades_it_to_v2() {
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/v1-small.atss");
    let (v1_space, _) = read_space_from_path(&fixture).unwrap();
    let path = temp_dir("upgrade").join("upgraded.atss");
    write_space_to_path(&v1_space, &path).unwrap();
    let loaded = load_space_from_path(&path, LoadOptions::mmap_trusted()).unwrap();
    assert_eq!(loaded.info.version, FORMAT_VERSION);
    assert!(loaded.info.index.is_some());
    if cfg!(target_os = "linux") {
        assert!(loaded.report.is_zero_copy());
    }
    assert_spaces_identical(&v1_space, &loaded.space);
}
